package relation

import "testing"

func TestColAppendAcrossBlockSeal(t *testing.T) {
	var c Col
	n := BlockSize + 100
	for i := 0; i < n; i++ {
		c.Append(Value(i))
	}
	if c.Len() != n {
		t.Fatalf("Len = %d, want %d", c.Len(), n)
	}
	if c.NumBlocks() != 2 {
		t.Fatalf("NumBlocks = %d, want 2", c.NumBlocks())
	}
	for _, i := range []int{0, BlockSize - 1, BlockSize, n - 1} {
		if got := c.At(i); got != Value(i) {
			t.Fatalf("At(%d) = %d, want %d", i, got, i)
		}
	}
	if got := len(c.Block(0)); got != BlockSize {
		t.Fatalf("sealed block length %d, want %d", got, BlockSize)
	}
	if got := len(c.Block(1)); got != 100 {
		t.Fatalf("tail block length %d, want 100", got)
	}
}

func TestColSealedBlockStableUnderAppend(t *testing.T) {
	var c Col
	for i := 0; i < BlockSize; i++ {
		c.Append(Value(i))
	}
	sealed := c.Block(0)
	// A view captured at the seal must stay valid (same backing array,
	// same values) through arbitrary later appends — the overlay/StableView
	// contract.
	for i := 0; i < 3*BlockSize; i++ {
		c.Append(Value(-1))
	}
	if &sealed[0] != &c.Block(0)[0] {
		t.Fatal("sealed block reallocated by later appends")
	}
	for _, i := range []int{0, 1, BlockSize - 1} {
		if sealed[i] != Value(i) {
			t.Fatalf("sealed[%d] changed to %d", i, sealed[i])
		}
	}
	// In-place Set must still reach sealed cells (cell updates mutate,
	// sealing freezes identity and length only).
	c.Set(1, 42)
	if sealed[1] != 42 {
		t.Fatalf("Set through chain missed the sealed block: %d", sealed[1])
	}
}

func TestColAppendBlockRestore(t *testing.T) {
	full := make([]Value, BlockSize)
	for i := range full {
		full[i] = Value(i)
	}
	short := []Value{7, 8, 9}
	var c Col
	c.appendBlock(full)
	c.appendBlock(short)
	if c.Len() != BlockSize+3 {
		t.Fatalf("Len = %d, want %d", c.Len(), BlockSize+3)
	}
	if c.At(BlockSize+2) != 9 || c.At(5) != 5 {
		t.Fatal("restored cells wrong")
	}
	// The short tail must extend in place up to the seal.
	c.Append(10)
	if c.At(BlockSize+3) != 10 {
		t.Fatal("append after restore failed")
	}
	// Adopting a block onto an open tail is a programming error.
	defer func() {
		if recover() == nil {
			t.Fatal("appendBlock on an open tail did not panic")
		}
	}()
	c.appendBlock(full)
}

func TestColCloneIsDeep(t *testing.T) {
	var c Col
	for i := 0; i < BlockSize+10; i++ {
		c.Append(Value(i))
	}
	cl := c.clone()
	cl.Set(0, 99)
	cl.Set(BlockSize+5, 99)
	if c.At(0) != 0 || c.At(BlockSize+5) != Value(BlockSize+5) {
		t.Fatal("clone shares blocks with the original")
	}
	cl.Append(123)
	if c.Len() != BlockSize+10 {
		t.Fatal("clone append changed the original's length")
	}
}
