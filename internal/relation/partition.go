package relation

import (
	"sort"
)

// Partition is the set of equivalence classes Π_X of tuples agreeing on an
// attribute set X. A stripped partition Π*_X omits singleton classes, which
// can never violate a dependency X → A (Lemma 6 of the paper).
type Partition struct {
	// Classes holds tuple ids per equivalence class. Within a class ids are
	// ascending; classes are ordered by their smallest id (the class
	// representative), giving a canonical form.
	Classes [][]int
	// N is the number of tuples in the underlying relation (not the number
	// covered by Classes; stripped partitions cover fewer).
	N int
	// Stripped records whether singleton classes were removed.
	Stripped bool
}

// NumClasses returns the number of equivalence classes.
func (p *Partition) NumClasses() int { return len(p.Classes) }

// Size returns the total number of tuples across classes.
func (p *Partition) Size() int {
	n := 0
	for _, c := range p.Classes {
		n += len(c)
	}
	return n
}

// Error returns ‖Π‖ − |Π|, the minimum number of tuples to remove so that X
// becomes a key over the covered tuples — TANE's e(X) numerator, used by
// key detection and approximate dependencies.
func (p *Partition) Error() int {
	e := 0
	for _, c := range p.Classes {
		e += len(c) - 1
	}
	return e
}

// IsKeyOver reports whether the partition certifies X as a (super)key: a
// stripped partition with no classes means every class was a singleton.
func (p *Partition) IsKeyOver() bool {
	if p.Stripped {
		return len(p.Classes) == 0
	}
	for _, c := range p.Classes {
		if len(c) > 1 {
			return false
		}
	}
	return true
}

// Strip returns the stripped version of p (no singleton classes). If p is
// already stripped it is returned unchanged.
func (p *Partition) Strip() *Partition {
	if p.Stripped {
		return p
	}
	out := &Partition{N: p.N, Stripped: true}
	for _, c := range p.Classes {
		if len(c) > 1 {
			out.Classes = append(out.Classes, c)
		}
	}
	return out
}

// canonicalize sorts tuple ids within classes and classes by representative.
func (p *Partition) canonicalize() {
	for _, c := range p.Classes {
		sort.Ints(c)
	}
	sort.Slice(p.Classes, func(i, j int) bool { return p.Classes[i][0] < p.Classes[j][0] })
}

// SingleColumnPartition computes Π_{A} for one attribute.
func SingleColumnPartition(r *Relation, col int) *Partition {
	groups := make(map[Value][]int)
	colVals := r.Column(col)
	for i, v := range colVals {
		groups[v] = append(groups[v], i)
	}
	p := &Partition{N: r.NumRows()}
	for _, g := range groups {
		p.Classes = append(p.Classes, g)
	}
	p.canonicalize()
	return p
}

// PartitionOf computes Π_X for an arbitrary attribute set by grouping on the
// concatenation of encoded values. For the empty set it returns a single
// class containing all tuples.
func PartitionOf(r *Relation, attrs AttrSet) *Partition {
	n := r.NumRows()
	if attrs.IsEmpty() {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return &Partition{Classes: [][]int{all}, N: n}
	}
	cols := attrs.Attrs()
	type key = string
	groups := make(map[key][]int)
	buf := make([]byte, 0, 8*len(cols))
	for i := 0; i < n; i++ {
		buf = buf[:0]
		for _, c := range cols {
			v := r.Value(i, c)
			buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), '|')
		}
		groups[string(buf)] = append(groups[string(buf)], i)
	}
	p := &Partition{N: n}
	for _, g := range groups {
		p.Classes = append(p.Classes, g)
	}
	p.canonicalize()
	return p
}

// ProductBuffer holds reusable scratch space for partition products over
// one relation, avoiding the per-product probe-array allocation that
// dominates lattice traversal. A zero ProductBuffer is usable; buffers are
// not safe for concurrent use.
type ProductBuffer struct {
	probe   []int32
	scratch [][]int
	touched []int32
}

// Product computes the stripped partition Π*_{X∪Y} = Π*_X · Π*_Y in time
// linear in the sizes of the inputs, using the probe-table method of TANE.
// Both inputs must be partitions over the same relation.
func Product(a, b *Partition) *Partition {
	var buf ProductBuffer
	return buf.Product(a, b)
}

// Product is the buffer-reusing form of the package-level Product.
func (buf *ProductBuffer) Product(a, b *Partition) *Partition {
	a, b = a.Strip(), b.Strip()
	// probe[t] = index of a-class containing tuple t, or -1. The array is
	// reset lazily: only slots written by the previous call are cleared.
	if len(buf.probe) < a.N {
		buf.probe = make([]int32, a.N)
		for i := range buf.probe {
			buf.probe[i] = -1
		}
	}
	probe := buf.probe
	for ci, class := range a.Classes {
		for _, t := range class {
			probe[t] = int32(ci)
		}
	}
	if len(buf.scratch) < len(a.Classes) {
		buf.scratch = make([][]int, len(a.Classes))
	}
	scratch := buf.scratch
	touched := buf.touched[:0]
	out := &Partition{N: a.N, Stripped: true}
	// For each b-class, bucket its tuples by a-class id using slice
	// scratch space (no per-class map allocations). Tuples within a
	// b-class arrive in ascending order, so buckets are already sorted.
	for _, class := range b.Classes {
		for _, t := range class {
			if ci := probe[t]; ci >= 0 {
				if scratch[ci] == nil {
					touched = append(touched, ci)
				}
				scratch[ci] = append(scratch[ci], t)
			}
		}
		for _, ci := range touched {
			if len(scratch[ci]) > 1 {
				out.Classes = append(out.Classes, scratch[ci])
			}
			scratch[ci] = nil
		}
		touched = touched[:0]
	}
	buf.touched = touched
	// Clear the probe slots we wrote so the next call starts clean.
	for _, class := range a.Classes {
		for _, t := range class {
			probe[t] = -1
		}
	}
	// Classes carry sorted tuples already; order classes canonically by
	// representative.
	sort.Slice(out.Classes, func(i, j int) bool { return out.Classes[i][0] < out.Classes[j][0] })
	return out
}

// PartitionCache memoizes stripped partitions by attribute set, computing
// single columns directly and larger sets via Product of cached parts.
type PartitionCache struct {
	r     *Relation
	cache map[AttrSet]*Partition
}

// NewPartitionCache creates a cache over r and precomputes all
// single-attribute stripped partitions.
func NewPartitionCache(r *Relation) *PartitionCache {
	pc := &PartitionCache{r: r, cache: make(map[AttrSet]*Partition)}
	for c := 0; c < r.NumCols(); c++ {
		pc.cache[Single(c)] = SingleColumnPartition(r, c).Strip()
	}
	return pc
}

// Relation returns the underlying relation.
func (pc *PartitionCache) Relation() *Relation { return pc.r }

// Get returns the stripped partition Π*_X, computing and caching it if
// absent. Supersets are derived by multiplying a cached subset with the
// missing single columns.
func (pc *PartitionCache) Get(attrs AttrSet) *Partition {
	if p, ok := pc.cache[attrs]; ok {
		return p
	}
	if attrs.IsEmpty() {
		p := PartitionOf(pc.r, attrs).Strip()
		pc.cache[attrs] = p
		return p
	}
	// Find the largest cached subset obtained by dropping one attribute;
	// recurse (depth ≤ |attrs|).
	var best AttrSet
	found := false
	for _, i := range attrs.Attrs() {
		sub := attrs.Without(i)
		if _, ok := pc.cache[sub]; ok {
			best = sub
			found = true
			break
		}
	}
	if !found {
		// Build from the first attribute upward.
		best = Single(attrs.First())
	}
	p := pc.Get(best)
	for _, i := range attrs.Minus(best).Attrs() {
		p = Product(p, pc.Get(Single(i)))
	}
	pc.cache[attrs] = p
	return p
}

// Put stores a partition for attrs, typically one computed level-by-level
// during lattice traversal.
func (pc *PartitionCache) Put(attrs AttrSet, p *Partition) { pc.cache[attrs] = p.Strip() }

// Evict removes cached partitions whose attribute sets have exactly size k;
// lattice traversals call this to bound memory to two levels.
func (pc *PartitionCache) Evict(k int) {
	for a := range pc.cache {
		if a.Len() == k {
			delete(pc.cache, a)
		}
	}
}
