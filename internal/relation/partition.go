package relation

// Partition is the set of equivalence classes Π_X of tuples agreeing on an
// attribute set X. A stripped partition Π*_X omits singleton classes, which
// can never violate a dependency X → A (Lemma 6 of the paper).
//
// The representation is flat: one tuple array holding every class
// back-to-back plus an offset index, rather than a slice per class. The
// lattice traversal computes millions of partition products; the flat
// layout makes a product cost two allocations (tuples + offsets) instead
// of one per output class, and scans sequentially instead of chasing
// per-class pointers. See DESIGN.md ("Flat partition memory layout").
type Partition struct {
	// Tuples holds the tuple ids of every equivalence class back-to-back.
	// Within a class ids are ascending; classes are ordered by their
	// smallest id (the class representative), giving a canonical form.
	Tuples []int32
	// Offsets indexes Tuples: class i is Tuples[Offsets[i]:Offsets[i+1]],
	// so len(Offsets) is NumClasses+1. A partition with no classes may
	// have a nil or single-element Offsets.
	Offsets []int32
	// N is the number of tuples in the underlying relation (not the number
	// covered by Tuples; stripped partitions cover fewer).
	N int
	// Stripped records whether singleton classes were removed.
	Stripped bool
}

// NumClasses returns the number of equivalence classes.
func (p *Partition) NumClasses() int {
	if len(p.Offsets) < 2 {
		return 0
	}
	return len(p.Offsets) - 1
}

// Class returns the tuple ids of class i as a view into the flat array;
// callers must not modify it.
func (p *Partition) Class(i int) []int32 {
	return p.Tuples[p.Offsets[i]:p.Offsets[i+1]]
}

// ClassInts materializes class i as []int.
func (p *Partition) ClassInts(i int) []int {
	c := p.Class(i)
	out := make([]int, len(c))
	for j, t := range c {
		out[j] = int(t)
	}
	return out
}

// ClassViews returns every class as a view into the flat array — the
// zero-copy form for callers that index classes repeatedly (e.g. the
// incremental monitor). Callers must not modify the views.
func (p *Partition) ClassViews() [][]int32 {
	out := make([][]int32, p.NumClasses())
	for i := range out {
		out[i] = p.Class(i)
	}
	return out
}

// ClassesAsInts materializes every class as []int — a convenience for
// tests and cold paths; hot paths should iterate Class(i) views.
func (p *Partition) ClassesAsInts() [][]int {
	out := make([][]int, p.NumClasses())
	for i := range out {
		out[i] = p.ClassInts(i)
	}
	return out
}

// Size returns the total number of tuples across classes.
func (p *Partition) Size() int { return len(p.Tuples) }

// Error returns ‖Π‖ − |Π|, the minimum number of tuples to remove so that X
// becomes a key over the covered tuples — TANE's e(X) numerator, used by
// key detection and approximate dependencies. With the flat layout this is
// arithmetic on lengths: Σ_c (|c|−1) = |Tuples| − |classes|.
func (p *Partition) Error() int { return len(p.Tuples) - p.NumClasses() }

// IsKeyOver reports whether the partition certifies X as a (super)key: a
// stripped partition with no classes means every class was a singleton.
func (p *Partition) IsKeyOver() bool {
	if p.Stripped {
		return p.NumClasses() == 0
	}
	return len(p.Tuples) == p.NumClasses()
}

// Strip returns the stripped version of p (no singleton classes). If p is
// already stripped it is returned unchanged.
func (p *Partition) Strip() *Partition {
	if p.Stripped {
		return p
	}
	kept, keptTuples := 0, 0
	for i := 0; i < p.NumClasses(); i++ {
		if sz := int(p.Offsets[i+1] - p.Offsets[i]); sz > 1 {
			kept++
			keptTuples += sz
		}
	}
	out := &Partition{N: p.N, Stripped: true}
	if kept == 0 {
		return out
	}
	out.Tuples = make([]int32, 0, keptTuples)
	out.Offsets = make([]int32, 1, kept+1)
	for i := 0; i < p.NumClasses(); i++ {
		if p.Offsets[i+1]-p.Offsets[i] > 1 {
			out.Tuples = append(out.Tuples, p.Class(i)...)
			out.Offsets = append(out.Offsets, int32(len(out.Tuples)))
		}
	}
	return out
}

// SingleColumnPartition computes Π_{A} for one attribute. Because column
// values are dictionary-encoded, grouping is a counting pass over a dense
// value→class table instead of a hash map; class ids are assigned in order
// of first appearance, which is exactly canonical (representative) order.
func SingleColumnPartition(r *Relation, col int) *Partition {
	n := r.NumRows()
	colVals := r.Column(col)
	// Slot 0 is reserved for NullValue (-1); interned values map to v+1.
	table := make([]int32, r.Dict(col).Size()+1)
	for i := range table {
		table[i] = -1
	}
	sizes := make([]int32, 0, 16)
	for b := 0; b < colVals.NumBlocks(); b++ {
		for _, v := range colVals.Block(b) {
			s := int(v) + 1
			if table[s] < 0 {
				table[s] = int32(len(sizes))
				sizes = append(sizes, 0)
			}
			sizes[table[s]]++
		}
	}
	nc := len(sizes)
	offsets := make([]int32, nc+1)
	for i, sz := range sizes {
		offsets[i+1] = offsets[i] + sz
	}
	tuples := make([]int32, n)
	cursor := sizes // reuse: cursor[i] = next write position of class i
	copy(cursor, offsets[:nc])
	row := 0
	for b := 0; b < colVals.NumBlocks(); b++ {
		for _, v := range colVals.Block(b) {
			ci := table[int(v)+1]
			tuples[cursor[ci]] = int32(row)
			cursor[ci]++
			row++
		}
	}
	return &Partition{Tuples: tuples, Offsets: offsets, N: n}
}

// PartitionOf computes Π_X for an arbitrary attribute set by grouping on the
// concatenation of encoded values. For the empty set it returns a single
// class containing all tuples. Class ids are assigned in first-appearance
// order, which is canonical order.
func PartitionOf(r *Relation, attrs AttrSet) *Partition {
	n := r.NumRows()
	if attrs.IsEmpty() {
		all := make([]int32, n)
		for i := range all {
			all[i] = int32(i)
		}
		return &Partition{Tuples: all, Offsets: []int32{0, int32(n)}, N: n}
	}
	cols := attrs.Attrs()
	groups := make(map[string]int32)
	classOf := make([]int32, n)
	sizes := make([]int32, 0, 16)
	buf := make([]byte, 0, 8*len(cols))
	for i := 0; i < n; i++ {
		buf = buf[:0]
		for _, c := range cols {
			v := r.Value(i, c)
			buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), '|')
		}
		ci, ok := groups[string(buf)]
		if !ok {
			ci = int32(len(sizes))
			groups[string(buf)] = ci
			sizes = append(sizes, 0)
		}
		classOf[i] = ci
		sizes[ci]++
	}
	nc := len(sizes)
	offsets := make([]int32, nc+1)
	for i, sz := range sizes {
		offsets[i+1] = offsets[i] + sz
	}
	tuples := make([]int32, n)
	cursor := sizes
	copy(cursor, offsets[:nc])
	for i := 0; i < n; i++ {
		ci := classOf[i]
		tuples[cursor[ci]] = int32(i)
		cursor[ci]++
	}
	return &Partition{Tuples: tuples, Offsets: offsets, N: n}
}

// ProductBuffer holds reusable scratch space for partition products over
// one relation, avoiding the per-product scratch allocations that would
// otherwise dominate lattice traversal. A zero ProductBuffer is usable;
// buffers are not safe for concurrent use but may be reused across
// relations (even of different row counts).
type ProductBuffer struct {
	// probe[t] = index of the a-class containing tuple t, or -1. All slots
	// are -1 between calls; Product resets only the slots it wrote.
	probe []int32
	// counts/cursor are indexed by a-class; counts is all-zero between
	// calls (reset via touched).
	counts  []int32
	cursor  []int32
	touched []int32
	// tuples/starts stage the output classes in discovery order before the
	// canonical reorder.
	tuples []int32
	starts []int32
	// bucket maps representative tuple -> class index + 1 during the
	// canonical reorder; all-zero between calls (the reorder scan clears
	// the slots it reads).
	bucket []int32
}

// Product computes the stripped partition Π*_{X∪Y} = Π*_X · Π*_Y in time
// linear in the sizes of the inputs, using the probe-table method of TANE.
// Both inputs must be partitions over the same relation.
func Product(a, b *Partition) *Partition {
	var buf ProductBuffer
	return buf.Product(a, b)
}

// Product is the buffer-reusing form of the package-level Product.
func (buf *ProductBuffer) Product(a, b *Partition) *Partition {
	a, b = a.Strip(), b.Strip()
	// The probe side costs two passes over its payload (fill + clear), the
	// bucketing side three; giving the probe side the larger payload
	// minimizes the total. It also makes emission follow the smaller —
	// usually already-refined — side's class order, which is the order the
	// sorted fast path below accepts.
	if len(a.Tuples) < len(b.Tuples) {
		a, b = b, a
	}
	if len(buf.probe) < a.N {
		buf.probe = make([]int32, a.N)
		for i := range buf.probe {
			buf.probe[i] = -1
		}
	}
	probe := buf.probe
	for ci := 0; ci < a.NumClasses(); ci++ {
		for _, t := range a.Class(ci) {
			probe[t] = int32(ci)
		}
	}
	if len(buf.counts) < a.NumClasses() {
		buf.counts = make([]int32, a.NumClasses())
		buf.cursor = make([]int32, a.NumClasses())
	}
	counts, cursor := buf.counts, buf.cursor
	if cap(buf.tuples) < len(b.Tuples) {
		buf.tuples = make([]int32, len(b.Tuples))
	}
	scratch := buf.tuples[:cap(buf.tuples)]
	starts := buf.starts[:0]
	touched := buf.touched[:0]
	// For each b-class, bucket its tuples by a-class id in two passes:
	// count per a-class, assign each surviving (size ≥ 2) bucket a
	// contiguous range of the scratch array, then fill. Tuples within a
	// b-class arrive in ascending order, so buckets come out sorted.
	pos := int32(0)
	for bc := 0; bc < b.NumClasses(); bc++ {
		class := b.Class(bc)
		for _, t := range class {
			if ci := probe[t]; ci >= 0 {
				if counts[ci] == 0 {
					touched = append(touched, ci)
				}
				counts[ci]++
			}
		}
		filled := false
		for _, ci := range touched {
			if counts[ci] > 1 {
				cursor[ci] = pos
				starts = append(starts, pos)
				pos += counts[ci]
				filled = true
			} else {
				cursor[ci] = -1
			}
		}
		if filled {
			for _, t := range class {
				if ci := probe[t]; ci >= 0 && cursor[ci] >= 0 {
					scratch[cursor[ci]] = t
					cursor[ci]++
				}
			}
		}
		for _, ci := range touched {
			counts[ci] = 0
		}
		touched = touched[:0]
	}
	buf.touched = touched
	buf.starts = starts
	// Clear the probe slots we wrote so the next call starts clean.
	for ci := 0; ci < a.NumClasses(); ci++ {
		for _, t := range a.Class(ci) {
			probe[t] = -1
		}
	}
	out := &Partition{N: a.N, Stripped: true}
	nc := len(starts)
	if nc == 0 {
		return out
	}
	classEnd := func(k int32) int32 {
		if int(k+1) < nc {
			return starts[k+1]
		}
		return pos
	}
	out.Tuples = make([]int32, pos)
	out.Offsets = make([]int32, nc+1)
	// Classes carry sorted tuples already; order classes canonically by
	// representative. Discovery order is usually close to canonical, so
	// test sortedness before paying for the permutation.
	sorted := true
	for k := 1; k < nc; k++ {
		if scratch[starts[k]] < scratch[starts[k-1]] {
			sorted = false
			break
		}
	}
	if sorted {
		copy(out.Tuples, scratch[:pos])
		copy(out.Offsets, starts)
		out.Offsets[nc] = pos
		return out
	}
	// Canonical reorder without a comparison sort: representatives are
	// distinct tuple ids, so dropping each class index into a bucket keyed
	// by its representative and sweeping the row space in ascending order
	// yields rep-sorted classes in O(nc + max rep) sequential array work —
	// the quicksort this replaces paid a cache-hostile indirect compare
	// per element. The sweep clears every slot it reads, keeping the
	// buffer's all-zero invariant without a separate pass.
	if len(buf.bucket) < a.N {
		buf.bucket = make([]int32, a.N)
	}
	bucket := buf.bucket
	maxRep := int32(0)
	for k := 0; k < nc; k++ {
		rep := scratch[starts[k]]
		bucket[rep] = int32(k) + 1
		if rep > maxRep {
			maxRep = rep
		}
	}
	w := int32(0)
	i := 0
	for t := int32(0); t <= maxRep; t++ {
		k := bucket[t]
		if k == 0 {
			continue
		}
		bucket[t] = 0
		out.Offsets[i] = w
		i++
		w += int32(copy(out.Tuples[w:], scratch[starts[k-1]:classEnd(k-1)]))
	}
	out.Offsets[nc] = w
	return out
}

// RefineByLUT computes Π*_{X∪{c}} = Π*_X · Π*_c with the single column c
// presented as a prebuilt row→class lookup vector (lut[t] = class index
// of tuple t in Π*_c, −1 for stripped singleton rows) instead of a
// partition. The vector is exactly the probe table the general Product
// fills and clears per call — two O(n) passes over the column's ~n-row
// payload — so refining by a column costs three passes over p's stripped
// payload alone: the per-step cost of a repair-time partition chain
// drops from O(n) to O(‖Π*_X‖). lut must cover every tuple of p (same
// relation, same row count) and lutClasses must bound its class ids;
// the output is canonical and byte-identical to Product(p, Π*_c).
func (buf *ProductBuffer) RefineByLUT(p *Partition, lut []int32, lutClasses int) *Partition {
	p = p.Strip()
	if len(buf.counts) < lutClasses {
		buf.counts = make([]int32, lutClasses)
		buf.cursor = make([]int32, lutClasses)
	}
	counts, cursor := buf.counts, buf.cursor
	if cap(buf.tuples) < len(p.Tuples) {
		buf.tuples = make([]int32, len(p.Tuples))
	}
	scratch := buf.tuples[:cap(buf.tuples)]
	starts := buf.starts[:0]
	touched := buf.touched[:0]
	// Bucket each p-class's tuples by their lut id, exactly as Product
	// buckets a b-class by the probe table.
	pos := int32(0)
	for pcl := 0; pcl < p.NumClasses(); pcl++ {
		class := p.Class(pcl)
		for _, t := range class {
			if ci := lut[t]; ci >= 0 {
				if counts[ci] == 0 {
					touched = append(touched, ci)
				}
				counts[ci]++
			}
		}
		filled := false
		for _, ci := range touched {
			if counts[ci] > 1 {
				cursor[ci] = pos
				starts = append(starts, pos)
				pos += counts[ci]
				filled = true
			} else {
				cursor[ci] = -1
			}
		}
		if filled {
			for _, t := range class {
				if ci := lut[t]; ci >= 0 && cursor[ci] >= 0 {
					scratch[cursor[ci]] = t
					cursor[ci]++
				}
			}
		}
		for _, ci := range touched {
			counts[ci] = 0
		}
		touched = touched[:0]
	}
	buf.touched = touched
	buf.starts = starts
	out := &Partition{N: p.N, Stripped: true}
	nc := len(starts)
	if nc == 0 {
		return out
	}
	classEnd := func(k int32) int32 {
		if int(k+1) < nc {
			return starts[k+1]
		}
		return pos
	}
	out.Tuples = make([]int32, pos)
	out.Offsets = make([]int32, nc+1)
	sorted := true
	for k := 1; k < nc; k++ {
		if scratch[starts[k]] < scratch[starts[k-1]] {
			sorted = false
			break
		}
	}
	if sorted {
		copy(out.Tuples, scratch[:pos])
		copy(out.Offsets, starts)
		out.Offsets[nc] = pos
		return out
	}
	if len(buf.bucket) < p.N {
		buf.bucket = make([]int32, p.N)
	}
	bucket := buf.bucket
	maxRep := int32(0)
	for k := 0; k < nc; k++ {
		rep := scratch[starts[k]]
		bucket[rep] = int32(k) + 1
		if rep > maxRep {
			maxRep = rep
		}
	}
	w := int32(0)
	i := 0
	for t := int32(0); t <= maxRep; t++ {
		k := bucket[t]
		if k == 0 {
			continue
		}
		bucket[t] = 0
		out.Offsets[i] = w
		i++
		w += int32(copy(out.Tuples[w:], scratch[starts[k-1]:classEnd(k-1)]))
	}
	out.Offsets[nc] = w
	return out
}

