# Developer entry points. Everything is stdlib Go; no external tools needed
# (make lint additionally uses staticcheck when it is on PATH).

GO ?= go

.PHONY: all build test race bench repairbench fdbench monitorbench discoverybench storagebench pipelinebench experiments examples fmt vet lint smoke clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One benchmark per paper table/figure plus ablations (see EXPERIMENTS.md).
bench:
	$(GO) test -bench=. -benchmem ./...

# Repair-engine benchmark report (BENCH_repair.json): baseline vs indexed
# engine, per-stage timings, EMD micro-benchmarks.
repairbench:
	$(GO) run ./cmd/benchrunner -repairbench BENCH_repair.json -rows 4000

# FD-discovery benchmark report (BENCH_fd.json): the Exp-1 runtime curve for
# all seven baselines plus agree-set engine-vs-baseline micro-benchmarks.
fdbench:
	$(GO) run ./cmd/benchrunner -fdbench BENCH_fd.json -discrows 4000

# Incremental-monitor benchmark report (BENCH_monitor.json): batched
# violation maintenance vs full Detect rebuilds across Clinical sizes up to
# 1M rows, sweeping shard (-shards) and worker (-cpus) counts, with a
# byte-identical-report check and a partition-cache stats block.
monitorbench:
	$(GO) run ./cmd/benchrunner -monitorbench BENCH_monitor.json -rows 1000000 -shards 4,16 -cpus 1,0

# Incremental-discovery benchmark report (BENCH_discovery.json): live
# minimal-cover maintenance vs fresh per-batch FastOFD re-runs across
# Clinical sizes up to 50k rows, sweeping worker (-cpus) counts, with a
# byte-identical-cover check and the maintain.* stage-stats block.
discoverybench:
	$(GO) run ./cmd/benchrunner -discoverybench BENCH_discovery.json -rows 50000 -cpus 1,0

# Storage-tier benchmark report (BENCH_storage.json): snapshot reopen vs
# cold monitor+maintainer rebuild at up to 1M rows (with byte-identity
# gates on reports and cover, before and after replaying an update
# stream), plus the byte-budgeted cache's eviction-policy sweep.
storagebench:
	$(GO) run ./cmd/benchrunner -storagebench BENCH_storage.json -rows 1000000

# Merged-pipeline benchmark report (BENCH_pipeline.json): the one-index
# discover→detect pipeline (shared cache, verifier, live overlay registry)
# vs the separate monitor+maintainer pair on identical Clinical streams,
# with byte-identity gates on both the report and the cover.
pipelinebench:
	$(GO) run ./cmd/benchrunner -pipelinebench BENCH_pipeline.json -rows 50000 -cpus 1,0

# Paper-style experiment tables with accuracy metrics.
experiments:
	$(GO) run ./cmd/benchrunner -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/senses
	$(GO) run ./examples/monitor
	$(GO) run ./examples/inheritance
	$(GO) run ./examples/kiva
	$(GO) run ./examples/clinical

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

# Static analysis beyond vet. CI installs staticcheck; locally the target
# degrades to vet-only with a notice when the tool is absent.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; ran go vet only (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# End-to-end interrupt contract: a 1s-timeboxed discovery over a large
# generated workload must exit 3 with a partial result and a stage table.
smoke:
	$(GO) run ./cmd/genworkload -out /tmp/fastofd-smokework -rows 200000 -err 0.05 -inc 0.04
	$(GO) build -o /tmp/fastofd-smoke ./cmd/fastofd
	/tmp/fastofd-smoke -data /tmp/fastofd-smokework/data.csv \
		-ontology /tmp/fastofd-smokework/ontology.json \
		-no-opt -workers 0 -timeout 1s > /tmp/fastofd-smoke.out 2> /tmp/fastofd-smoke.err; \
	code=$$?; cat /tmp/fastofd-smoke.err; \
	test $$code -eq 3 && grep -q "^stage" /tmp/fastofd-smoke.err && echo "smoke: exit 3 with stage table, OK"

clean:
	$(GO) clean ./...
