# Developer entry points. Everything is stdlib Go; no external tools needed.

GO ?= go

.PHONY: all build test race bench repairbench fdbench experiments examples fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One benchmark per paper table/figure plus ablations (see EXPERIMENTS.md).
bench:
	$(GO) test -bench=. -benchmem ./...

# Repair-engine benchmark report (BENCH_repair.json): baseline vs indexed
# engine, per-stage timings, EMD micro-benchmarks.
repairbench:
	$(GO) run ./cmd/benchrunner -repairbench BENCH_repair.json -rows 4000

# FD-discovery benchmark report (BENCH_fd.json): the Exp-1 runtime curve for
# all seven baselines plus agree-set engine-vs-baseline micro-benchmarks.
fdbench:
	$(GO) run ./cmd/benchrunner -fdbench BENCH_fd.json -discrows 4000

# Paper-style experiment tables with accuracy metrics.
experiments:
	$(GO) run ./cmd/benchrunner -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/senses
	$(GO) run ./examples/monitor
	$(GO) run ./examples/inheritance
	$(GO) run ./examples/kiva
	$(GO) run ./examples/clinical

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
