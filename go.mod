module github.com/fastofd/fastofd

go 1.22
