package fastofd_test

import (
	"fmt"

	"github.com/fastofd/fastofd"
)

// ExampleDiscover shows FastOFD on the paper's country-code example: the
// FD CC → CTRY is violated syntactically but holds as a synonym OFD.
func ExampleDiscover() {
	schema := fastofd.MustSchema("CC", "CTRY")
	rel, _ := fastofd.FromRows(schema, [][]string{
		{"US", "USA"},
		{"US", "America"},
		{"IN", "India"},
		{"IN", "Bharat"},
		{"CA", "Canada"},
	})
	ont := fastofd.NewOntology()
	ont.MustAddClass("United States of America", "GEO", fastofd.NoClass, "USA", "America")
	ont.MustAddClass("India", "GEO", fastofd.NoClass, "India", "Bharat")

	res := fastofd.Discover(rel, ont, fastofd.DefaultDiscoveryOptions())
	for _, d := range res.OFDs {
		if d.Format(schema) == "[CC] -> CTRY" {
			fmt.Println("found:", d.Format(schema))
		}
	}
	// Output:
	// found: [CC] -> CTRY
}

// ExampleClosure demonstrates the linear-time inference procedure and the
// absence of Transitivity in the OFD axiom system.
func ExampleClosure() {
	schema := fastofd.MustSchema("A", "B", "C")
	sigma := fastofd.Set{
		fastofd.MustParseOFD(schema, "A -> B"),
		fastofd.MustParseOFD(schema, "B -> C"),
	}
	closure := fastofd.Closure(sigma, schema.MustSet("A"))
	fmt.Println("A+ =", closure.Format(schema)) // no C: OFDs lack transitivity
	// Output:
	// A+ = [A, B]
}

// ExampleClean repairs the paper's Table 3 inconsistency, choosing between
// updating cells and extending the ontology.
func ExampleClean() {
	schema := fastofd.MustSchema("SYMP", "DIAG", "MED")
	rel, _ := fastofd.FromRows(schema, [][]string{
		{"headache", "hypertension", "cartia"},
		{"headache", "hypertension", "ASA"},
		{"headache", "hypertension", "tiazac"},
		{"headache", "hypertension", "adizem"},
	})
	ont := fastofd.NewOntology()
	ont.MustAddClass("diltiazem", "FDA", fastofd.NoClass, "cartia", "tiazac")
	ont.MustAddClass("aspirin", "MoH", fastofd.NoClass, "cartia", "ASA")

	sigma, _ := fastofd.ParseOFDs(schema, []string{"SYMP,DIAG -> MED"})
	res, _ := fastofd.Clean(rel, ont, sigma, fastofd.DefaultCleanOptions())
	v := fastofd.NewVerifier(res.Instance, res.Ontology)
	fmt.Println("satisfied after repair:", v.SatisfiesAll(sigma))
	// Output:
	// satisfied after repair: true
}

// ExampleDetect explains violations instead of repairing them.
func ExampleDetect() {
	schema := fastofd.MustSchema("K", "MED")
	rel, _ := fastofd.FromRows(schema, [][]string{
		{"a", "cartia"},
		{"a", "tiazac"},
		{"a", "adizem"},
	})
	ont := fastofd.NewOntology()
	ont.MustAddClass("diltiazem", "FDA", fastofd.NoClass, "cartia", "tiazac")

	sigma, _ := fastofd.ParseOFDs(schema, []string{"K -> MED"})
	rep := fastofd.Detect(rel, ont, sigma)
	for _, v := range rep.Violations {
		fmt.Println("missing from best sense:", v.MissingValues)
		fmt.Println("out of ontology:", v.OutOfOntology)
	}
	// Output:
	// missing from best sense: [adizem]
	// out of ontology: [adizem]
}
