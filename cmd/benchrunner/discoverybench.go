package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/discovery"
	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/gen"
	"github.com/fastofd/fastofd/internal/relation"
)

// rediscoverCapRows caps the per-batch fresh-rediscovery baseline: beyond
// this size one full lattice run after every batch dominates the bench
// wall clock without adding information. Larger sizes still get one final
// DiscoverContext as the cover-identity reference.
const rediscoverCapRows = 100_000

// discoveryReport is the machine-readable output of -discoverybench:
// incremental cover maintenance (discovery.Maintainer) against fresh
// FastOFD re-runs on identical update streams over the Clinical
// workload, swept across tuple counts, batch sizes, and worker counts.
type discoveryReport struct {
	benchEnv
	Rows int   `json:"rows"`
	Cpus []int `json:"cpus"`
	// IncrementalSpeedup is the headline: fresh-rediscovery ns per batch
	// over best maintained ns per batch at the largest size with a
	// measured baseline, 1%-of-rows batches.
	IncrementalSpeedup float64 `json:"incremental_speedup"`
	// CoverIdentical records that, for every configuration and worker
	// count, the maintained cover was byte-identical (as JSON) to a fresh
	// discovery over the evolved instance.
	CoverIdentical bool `json:"cover_identical"`
	// CoverSize and CoverChurn describe the largest configuration: final
	// cover cardinality and total diff traffic (|added| + |removed|
	// across all batches).
	CoverSize  int           `json:"cover_size"`
	CoverChurn int           `json:"cover_churn"`
	// Configs pins every (size, batch) combination's own speedup, cover
	// identity, and repair-verifier counters — including the update-heavy
	// configurations (small batches over sub-headline sizes) CI gates on.
	Configs []discoveryConfig `json:"configs"`
	Results []benchResult     `json:"results"`
	// Stats carries the maintain.build / maintain.dirty / maintain.verify
	// / maintain.diff spans (and the baselines' discover.* spans)
	// accumulated across the runs; maintain.verify's skipped counter is
	// the oracle's pruning rate.
	Stats *exec.Stats `json:"stats"`
}

// discoveryVerifierStats is one maintained run's repair-verifier
// telemetry: the oracle's pruning rate over re-opened lattice nodes, the
// multi-RHS wave kernel's traversal sharing, and the persistent repair
// cache's cross-batch behaviour (counters are deltas over the replay, so
// construction-time warmup is excluded).
type discoveryVerifierStats struct {
	// Scans and Skips split the repaired lattice nodes into verified vs
	// oracle-answered; OracleHitRate = skips / (scans + skips).
	Scans         int64   `json:"scans"`
	Skips         int64   `json:"skips"`
	OracleHitRate float64 `json:"oracle_hit_rate"`
	// RefinedProbes is the subset of Scans answered by root refinement —
	// BFS climb nodes decided from the demoted seed's tracked unsatisfied
	// classes without touching the wave kernel.
	RefinedProbes int64 `json:"refined_probes"`
	// KernelTraversals is the number of Π*_X partition walks the wave
	// scheduler executed, KernelProbes the (LHS, RHS) verdicts those walks
	// produced; KernelFanIn = probes / traversals is the number of
	// per-pair walks each shared traversal replaced.
	KernelTraversals int64   `json:"kernel_traversals"`
	KernelProbes     int64   `json:"kernel_probes"`
	KernelFanIn      float64 `json:"kernel_fan_in"`
	// Cross-batch partition-cache effectiveness of the persistent repair
	// substrate: hits answered from cache, misses recomputed, resident
	// payload bytes at the end of the replay.
	CacheHits      uint64 `json:"cache_hits"`
	CacheMisses    uint64 `json:"cache_misses"`
	CacheBytes     int64  `json:"cache_bytes"`
	CacheEvictions uint64 `json:"cache_evictions"`
}

// discoveryConfig summarizes one (size, batch) combination: its own
// incremental speedup and cover identity, plus the best maintained run's
// verifier telemetry. UpdateHeavy marks the pinned update-dominated
// configurations (sub-headline sizes with 0.1%/1% batches) that CI's
// smoke gate checks beyond the headline numbers.
type discoveryConfig struct {
	N               int                    `json:"n"`
	BatchSize       int                    `json:"batch_size"`
	AppendsPerBatch int                    `json:"appends_per_batch"`
	UpdateHeavy     bool                   `json:"update_heavy"`
	MaintainedNs    float64                `json:"maintained_ns_per_batch"`
	RediscoverNs    float64                `json:"rediscover_ns_per_batch"`
	Speedup         float64                `json:"incremental_speedup"`
	CoverIdentical  bool                   `json:"cover_identical"`
	Verifier        discoveryVerifierStats `json:"verifier"`
}

// discoveryStream builds a seeded stream of nBatches batches over the
// dataset, shaped like a live ingestion pipeline rather than uniform
// noise: each batch's fresh errors concentrate on a few focus attributes
// (one import job dirties specific fields), half the batch repairs the
// oldest outstanding corruptions back to their original values, and most
// appended tuples are clean re-entries of existing rows. Corruptions
// demote OFDs over the focus consequents; repairs drain columns back to
// clean and promote them again, so the stream drives both flip
// directions while keeping each batch's dirty lattice region a slice of
// the whole — the regime incremental maintenance exists for. Occasional
// novel strings fall outside the ontology entirely. Row ids stay within
// the base relation, so the same stream replays identically on any copy.
func discoveryStream(ds *gen.Dataset, nBatches, batchSize, appendsPerBatch int, seed int64) [][]monitorOp {
	rng := rand.New(rand.NewSource(seed))
	cols := ds.Rel.NumCols()
	pools := make([][]string, cols)
	for c := 0; c < cols; c++ {
		pools[c] = ds.Rel.Project(c)
	}
	baseRows := ds.Rel.NumRows()
	type corruption struct {
		row, col int
		orig     string
	}
	var outstanding []corruption
	batches := make([][]monitorOp, nBatches)
	for b := range batches {
		focus := rng.Perm(cols)[:2+rng.Intn(2)]
		ops := make([]monitorOp, 0, batchSize+appendsPerBatch)
		for k := 0; k < batchSize; k++ {
			if k%2 == 1 && len(outstanding) > 0 {
				fix := outstanding[0]
				outstanding = outstanding[1:]
				ops = append(ops, monitorOp{update: core.CellUpdate{Row: fix.row, Col: fix.col, Value: fix.orig}})
				continue
			}
			col := focus[rng.Intn(len(focus))]
			row := rng.Intn(baseRows)
			val := pools[col][rng.Intn(len(pools[col]))]
			if rng.Intn(50) == 0 { // novel, out-of-ontology value
				val = fmt.Sprintf("bench-novel-%d-%d", b, k)
			}
			outstanding = append(outstanding, corruption{row, col, ds.Rel.String(row, col)})
			ops = append(ops, monitorOp{update: core.CellUpdate{Row: row, Col: col, Value: val}})
		}
		for k := 0; k < appendsPerBatch; k++ {
			row := ds.Rel.Row(rng.Intn(baseRows))
			if rng.Intn(5) == 0 { // the rest are clean re-entries
				col := focus[rng.Intn(len(focus))]
				row[col] = pools[col][rng.Intn(len(pools[col]))]
			}
			ops = append(ops, monitorOp{appendRow: row})
		}
		batches[b] = ops
	}
	return batches
}

// replayMaintained applies the stream through the maintainer, flushing
// each batch's updates through one ApplyBatchContext call and its
// appended tuples through one AppendRows call, and returns the total
// diff traffic.
func replayMaintained(ctx context.Context, mt *discovery.Maintainer, batches [][]monitorOp) (int, error) {
	churn := 0
	var updates []core.CellUpdate
	var appends [][]string
	for _, ops := range batches {
		updates = updates[:0]
		appends = appends[:0]
		for _, op := range ops {
			if op.appendRow != nil {
				appends = append(appends, op.appendRow)
				continue
			}
			updates = append(updates, op.update)
		}
		d, err := mt.ApplyBatchContext(ctx, updates)
		if err != nil {
			return churn, err
		}
		churn += len(d.Added) + len(d.Removed)
		if len(appends) > 0 {
			d, err := mt.AppendRows(appends)
			if err != nil {
				return churn, err
			}
			churn += len(d.Added) + len(d.Removed)
		}
	}
	return churn, nil
}

// replayRediscover applies the stream to a bare relation and pays a
// fresh DiscoverContext — partitions, lattice, verification — after
// every batch, which is what keeping the cover current costs without the
// maintainer. Returns the final cover.
func replayRediscover(ctx context.Context, rel *relation.Relation, ds *gen.Dataset, batches [][]monitorOp, workers int, stats *exec.Stats) (core.Set, error) {
	var cover core.Set
	opts := discovery.DefaultOptions()
	opts.Workers = workers
	opts.Stats = stats
	for _, ops := range batches {
		for _, op := range ops {
			if op.appendRow != nil {
				rel.AppendRow(op.appendRow)
				continue
			}
			rel.SetString(op.update.Row, op.update.Col, op.update.Value)
		}
		res, err := discovery.DiscoverContext(ctx, rel, ds.FullOnt, opts)
		if err != nil {
			return nil, err
		}
		cover = res.OFDs
	}
	return cover, nil
}

// discoverEvolved applies the whole stream and runs one final discovery
// — the cover-identity reference when the per-batch rediscovery baseline
// is capped out at large sizes.
func discoverEvolved(ctx context.Context, rel *relation.Relation, ds *gen.Dataset, batches [][]monitorOp, stats *exec.Stats) (core.Set, error) {
	for _, ops := range batches {
		for _, op := range ops {
			if op.appendRow != nil {
				rel.AppendRow(op.appendRow)
				continue
			}
			rel.SetString(op.update.Row, op.update.Col, op.update.Value)
		}
	}
	opts := discovery.DefaultOptions()
	opts.Stats = stats
	res, err := discovery.DiscoverContext(ctx, rel, ds.FullOnt, opts)
	if err != nil {
		return nil, err
	}
	return res.OFDs, nil
}

// runDiscoveryBench measures incremental cover maintenance against fresh
// per-batch rediscovery on identical Clinical update streams and writes
// BENCH_discovery.json. Every maintained run must end with a cover
// byte-identical to a fresh discovery over the evolved instance
// (cover_identical). smoke shrinks the grid to one size with two batches
// for CI. A cancelled ctx stops between configurations; the rows
// measured so far are still written before the error returns.
func runDiscoveryBench(ctx context.Context, stats *exec.Stats, path string, rows int, cpuList []int, smoke bool) error {
	sizes := []int{rows / 4, rows / 2, rows}
	batchPcts := []float64{0.1, 1.0} // percent of rows updated per batch
	nBatches := 4
	if smoke {
		// Two batch sizes even in smoke: the 0.1% config is the update-heavy
		// gate (appends = batch/20 rounds to ~0, so batches are pure-update),
		// the 1% config the headline speedup.
		sizes = []int{rows}
		batchPcts = []float64{0.1, 1.0}
		nBatches = 2
	}
	if len(cpuList) == 0 {
		cpuList = []int{1, 0}
	}

	report := discoveryReport{
		benchEnv:       newBenchEnv(),
		Rows:           rows,
		Cpus:           cpuList,
		CoverIdentical: true,
		Stats:          stats,
	}
	partial := partialWriter(path, &report, &report.Results, 34)

	for _, n := range sizes {
		if n < 16 {
			continue
		}
		ds := gen.Clinical(n, 1)
		for _, pct := range batchPcts {
			batchSize := int(float64(n) * pct / 100)
			if batchSize < 1 {
				batchSize = 1
			}
			appends := batchSize / 20
			batches := discoveryStream(ds, nBatches, batchSize, appends, 7)

			// Maintained runs for every worker count, each on its own copy
			// of the instance; effective worker counts dedup the grid.
			seen := map[int]bool{}
			var bestNs float64
			var bestVerifier discoveryVerifierStats
			var covers []string
			churn := 0
			for _, w := range cpuList {
				if err := exec.Interrupted(ctx, "discoverybench"); err != nil {
					return partial(err)
				}
				eff := exec.Workers(w)
				if seen[eff] {
					continue
				}
				seen[eff] = true
				opts := discovery.DefaultOptions()
				opts.Workers = w
				opts.Stats = stats
				mt, err := discovery.NewMaintainerContext(ctx, ds.Rel.Clone(), ds.FullOnt, opts)
				if err != nil {
					return partial(err)
				}
				scans0, skips0 := mt.Scans(), mt.Skips()
				refines0 := mt.Refines()
				trav0, probes0 := mt.KernelStats()
				cache0 := mt.RepairCache().Stats()
				start := time.Now()
				c, err := replayMaintained(ctx, mt, batches)
				if err != nil {
					return partial(err)
				}
				perBatch := float64(time.Since(start).Nanoseconds()) / float64(nBatches)
				vs := discoveryVerifierStats{
					Scans:         mt.Scans() - scans0,
					Skips:         mt.Skips() - skips0,
					RefinedProbes: mt.Refines() - refines0,
				}
				if total := vs.Scans + vs.Skips; total > 0 {
					vs.OracleHitRate = float64(vs.Skips) / float64(total)
				}
				trav, probes := mt.KernelStats()
				vs.KernelTraversals, vs.KernelProbes = trav-trav0, probes-probes0
				if vs.KernelTraversals > 0 {
					vs.KernelFanIn = float64(vs.KernelProbes) / float64(vs.KernelTraversals)
				}
				cs := mt.RepairCache().Stats().Since(cache0)
				vs.CacheHits, vs.CacheMisses = cs.Hits, cs.Misses
				vs.CacheBytes = mt.RepairCache().Stats().Bytes
				vs.CacheEvictions = cs.Evictions
				churn = c
				cov, err := json.Marshal(mt.Cover())
				if err != nil {
					return partial(err)
				}
				covers = append(covers, string(cov))
				report.Results = append(report.Results, benchResult{
					Name:       fmt.Sprintf("maintained-n%d-b%d-w%d", n, batchSize, eff),
					Iterations: nBatches,
					NsPerOp:    perBatch,
				})
				if bestNs == 0 || perBatch < bestNs {
					bestNs = perBatch
					bestVerifier = vs
				}
			}

			// Fresh rediscovery baseline (parallel — its best case), capped
			// at rediscoverCapRows; larger sizes get one final discovery as
			// the cover-identity reference only.
			if err := exec.Interrupted(ctx, "discoverybench"); err != nil {
				return partial(err)
			}
			var refCover core.Set
			var rediscoverNs float64
			if n <= rediscoverCapRows {
				start := time.Now()
				cov, err := replayRediscover(ctx, ds.Rel.Clone(), ds, batches, 0, stats)
				if err != nil {
					return partial(err)
				}
				rediscoverNs = float64(time.Since(start).Nanoseconds()) / float64(nBatches)
				refCover = cov
				report.Results = append(report.Results, benchResult{
					Name:       fmt.Sprintf("rediscover-n%d-b%d-w0", n, batchSize),
					Iterations: nBatches,
					NsPerOp:    rediscoverNs,
				})
			} else {
				cov, err := discoverEvolved(ctx, ds.Rel.Clone(), ds, batches, stats)
				if err != nil {
					return partial(err)
				}
				refCover = cov
			}

			refJSON, err := json.Marshal(refCover)
			if err != nil {
				return partial(err)
			}
			cfgIdentical := true
			for _, c := range covers {
				if c != string(refJSON) {
					report.CoverIdentical = false
					cfgIdentical = false
					fmt.Fprintf(os.Stderr, "discoverybench: n=%d batch=%d: maintained cover differs from fresh discovery\n", n, batchSize)
					break
				}
			}
			cfg := discoveryConfig{
				N:               n,
				BatchSize:       batchSize,
				AppendsPerBatch: appends,
				UpdateHeavy:     (n == rows/4 && pct == 1.0) || (n == rows/2 && pct == batchPcts[0]) || (smoke && pct == batchPcts[0]),
				MaintainedNs:    bestNs,
				RediscoverNs:    rediscoverNs,
				CoverIdentical:  cfgIdentical,
				Verifier:        bestVerifier,
			}
			if rediscoverNs > 0 && bestNs > 0 {
				cfg.Speedup = rediscoverNs / bestNs
			}
			report.Configs = append(report.Configs, cfg)
			if n == sizes[len(sizes)-1] && pct == batchPcts[len(batchPcts)-1] {
				if rediscoverNs > 0 && bestNs > 0 {
					report.IncrementalSpeedup = rediscoverNs / bestNs
				}
				report.CoverSize = len(refCover)
				report.CoverChurn = churn
			}
		}
	}

	if err := writeBenchReport(path, report, report.Results, 34); err != nil {
		return err
	}
	fmt.Printf("incremental vs fresh rediscovery, 1%% batches: %.1fx faster\n", report.IncrementalSpeedup)
	fmt.Printf("covers identical to fresh discovery: %v (final cover: %d OFDs, churn: %d)\n",
		report.CoverIdentical, report.CoverSize, report.CoverChurn)
	fmt.Printf("wrote %s\n", path)
	return nil
}
