// Command benchrunner regenerates every table and figure of the paper's
// evaluation section on the synthetic substitute workloads, printing the
// same rows/series the paper reports. Absolute numbers differ (different
// hardware, synthetic data, laptop-scale N); the shapes — who wins, by
// what rough factor, where curves bend — are the reproduction target.
//
// Usage:
//
//	benchrunner [-exp all|1,2,5-7] [-rows N] [-seeds K] [-timeout 10m]
//
// Experiment ids follow the paper: 1..5 are FastOFD (scalability in N and
// n, optimizations, lattice levels, false positives), 6..8 sense selection,
// 9..14 OFDClean (beam, err%, inc%, |Σ|, N, HoloClean comparison).
//
// SIGINT/SIGTERM or an elapsed -timeout stop the run cooperatively: the
// experiment loop stops between experiments, the bench modes write their
// report with the rows measured so far, a per-stage execution table goes to
// stderr, and the process exits with status 3. The -partitionbench,
// -repairbench, -fdbench, -monitorbench and -discoverybench reports embed
// the per-stage span registry as a "stats" block, so CI artifacts carry
// stage-level timings alongside the benchmark rows; -monitorbench
// additionally sweeps monitor shard and worker counts (-shards, -cpus) and
// reports a partition-cache block, and -discoverybench sweeps maintainer
// worker counts (-cpus) against fresh per-batch FastOFD re-runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/fastofd/fastofd/internal/cli"
	"github.com/fastofd/fastofd/internal/exec"
)

func main() {
	var (
		expFlag   = flag.String("exp", "all", "experiments to run: 'all' or comma list with ranges, e.g. 1,3,6-8")
		rows      = flag.Int("rows", 4000, "base tuple count for repair experiments and -monitorbench")
		discRows  = flag.Int("discrows", 4000, "base tuple count for discovery experiments")
		seeds     = flag.Int("seeds", 3, "seeds to average accuracy metrics over")
		partBench = flag.String("partitionbench", "", "run the partition-engine micro-benchmarks and write JSON results to this path (e.g. BENCH_partition.json), then exit")
		repBench  = flag.String("repairbench", "", "run the repair-engine benchmarks and write JSON results to this path (e.g. BENCH_repair.json), then exit")
		fdBench   = flag.String("fdbench", "", "run the FD-discovery benchmarks (Exp-1 curve + agree-set micro-benches) and write JSON results to this path (e.g. BENCH_fd.json), then exit")
		monBench  = flag.String("monitorbench", "", "run the incremental-monitor benchmarks (batched maintenance vs full Detect rebuilds) and write JSON results to this path (e.g. BENCH_monitor.json), then exit")
		discBench = flag.String("discoverybench", "", "run the incremental-discovery benchmarks (live cover maintenance vs fresh FastOFD re-runs) and write JSON results to this path (e.g. BENCH_discovery.json), then exit")
		storBench = flag.String("storagebench", "", "run the storage-tier benchmarks (snapshot reopen vs cold rebuild, byte-budgeted cache eviction sweep) and write JSON results to this path (e.g. BENCH_storage.json), then exit")
		pipeBench = flag.String("pipelinebench", "", "run the merged-pipeline benchmarks (one shared live-index substrate vs separate monitor+maintainer) and write JSON results to this path (e.g. BENCH_pipeline.json), then exit")
		monShards = flag.String("shards", "4", "comma list of monitor shard counts to sweep in -monitorbench (1 is always included; 0 = derive from workers)")
		monCpus   = flag.String("cpus", "1,0", "comma list of monitor worker counts to sweep in -monitorbench (0 = all CPUs)")
		smoke     = flag.Bool("benchsmoke", false, "single-iteration benchmark mode for CI smoke runs")
		timeout   = flag.Duration("timeout", 0, "abort after this duration, keeping partial results (0 = no timeout)")
	)
	flag.Parse()
	ctx, stop := cli.Context(*timeout)
	defer stop()
	stageStats := exec.NewStats()
	finish := func(err error) {
		if err == nil {
			return
		}
		if cli.Interrupted(err) {
			cli.ExitInterruptedWith("benchrunner", err, stageStats)
		}
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}

	if *partBench != "" {
		finish(runPartitionBench(ctx, stageStats, *partBench, *discRows))
		return
	}
	if *repBench != "" {
		finish(runRepairBench(ctx, stageStats, *repBench, *rows, *smoke))
		return
	}
	if *fdBench != "" {
		finish(runFDBench(ctx, stageStats, *fdBench, *discRows, *smoke))
		return
	}
	if *monBench != "" {
		shardList, err := parseIntList(*monShards)
		if err != nil {
			finish(fmt.Errorf("-shards: %w", err))
		}
		cpuList, err := parseIntList(*monCpus)
		if err != nil {
			finish(fmt.Errorf("-cpus: %w", err))
		}
		finish(runMonitorBench(ctx, stageStats, *monBench, *rows, shardList, cpuList, *smoke))
		return
	}
	if *storBench != "" {
		finish(runStorageBench(ctx, stageStats, *storBench, *rows, *smoke))
		return
	}
	if *pipeBench != "" {
		cpuList, err := parseIntList(*monCpus)
		if err != nil {
			finish(fmt.Errorf("-cpus: %w", err))
		}
		finish(runPipelineBench(ctx, stageStats, *pipeBench, *rows, cpuList, *smoke))
		return
	}
	if *discBench != "" {
		cpuList, err := parseIntList(*monCpus)
		if err != nil {
			finish(fmt.Errorf("-cpus: %w", err))
		}
		finish(runDiscoveryBench(ctx, stageStats, *discBench, *rows, cpuList, *smoke))
		return
	}

	want, err := parseExpList(*expFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(2)
	}
	cfg := runConfig{rows: *rows, discRows: *discRows, seeds: *seeds}

	type experiment struct {
		id    int
		title string
		run   func(runConfig)
	}
	experiments := []experiment{
		{1, "Exp-1 (Fig 7a, Table 6): discovery scalability in N — FastOFD vs 7 FD algorithms", exp1VaryN},
		{2, "Exp-2 (Fig 7b): discovery scalability in n (attributes)", exp2VaryAttrs},
		{3, "Exp-3 (Fig 7c): pruning-optimization benefits", exp3Optimizations},
		{4, "Exp-4: efficiency over lattice levels", exp4LatticeLevels},
		{5, "Exp-5: false-positive FD errors eliminated by OFDs", exp5FalsePositives},
		{6, "Exp-6 (Fig 8a,b): sense selection vs |λ|", exp6VarySenses},
		{7, "Exp-7 (Fig 8c,d): sense selection vs err%", exp7VaryErr},
		{8, "Exp-8 (Table 6 right): sense assignment vs N", exp8SenseVaryN},
		{9, "Exp-9 (Fig 10a,b): repair accuracy/time vs beam size b", exp9VaryBeam},
		{10, "Exp-10/14 (Fig 10c,d): OFDClean vs HoloClean across err%", exp10VsHoloClean},
		{11, "Exp-11 (Fig 9a): repair accuracy vs inc%", exp11VaryInc},
		{12, "Exp-12 (Fig 9b): repair accuracy vs |Σ|", exp12VarySigma},
		{13, "Exp-13 (Table 7): OFDClean scalability in N", exp13CleanVaryN},
		{15, "Exp-Q (qualitative): interesting synonym and inheritance OFDs", expQualitative},
	}
	for _, e := range experiments {
		if !want[e.id] {
			continue
		}
		if err := exec.Interrupted(ctx, "experiments"); err != nil {
			finish(err)
		}
		fmt.Printf("\n=== %s ===\n", e.title)
		e.run(cfg)
	}
}

type runConfig struct {
	rows     int
	discRows int
	seeds    int
}

// parseExpList parses "all" or "1,3,6-8" into a set of experiment ids.
// Experiment 14 is folded into 10 (the paper's comparative discussion).
func parseExpList(s string) (map[int]bool, error) {
	out := make(map[int]bool)
	if s == "all" || s == "" {
		for i := 1; i <= 13; i++ {
			out[i] = true
		}
		out[15] = true // qualitative
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err1 := strconv.Atoi(lo)
			b, err2 := strconv.Atoi(hi)
			if err1 != nil || err2 != nil || a > b {
				return nil, fmt.Errorf("bad range %q", part)
			}
			for i := a; i <= b; i++ {
				out[normalizeExp(i)] = true
			}
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad experiment id %q", part)
		}
		out[normalizeExp(n)] = true
	}
	return out, nil
}

func normalizeExp(n int) int {
	if n == 14 {
		return 10
	}
	return n
}

// parseIntList parses a comma list of ints, e.g. "1,4,16".
func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad int %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
