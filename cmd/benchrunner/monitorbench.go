package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/gen"
	"github.com/fastofd/fastofd/internal/relation"
)

// monitorReport is the machine-readable output of -monitorbench: incremental
// violation maintenance (Monitor.ApplyBatch + AppendRow) against full
// DetectContext rebuilds on identical update streams over the Clinical
// workload, across tuple counts and batch sizes.
type monitorReport struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	NumCPU int    `json:"num_cpu"`
	Rows   int    `json:"rows"`
	// Speedup is the headline ratio: full-rebuild ns over incremental ns at
	// the largest size with 1%-of-rows batches, parallel workers.
	Speedup float64 `json:"speedup"`
	// ReportsIdentical records that, for every configuration and worker
	// count, the monitor's final report was byte-identical (as JSON) to a
	// fresh Detect over the evolved instance.
	ReportsIdentical bool          `json:"reports_identical"`
	Results          []benchResult `json:"results"`
	// Stats carries the monitor.build / monitor.reverify / detect.verify
	// spans accumulated across the runs.
	Stats *exec.Stats `json:"stats"`
}

// monitorOp is one element of a deterministic maintenance stream: either a
// cell update (part of the surrounding batch) or an appended tuple.
type monitorOp struct {
	appendRow []string // non-nil: append this tuple
	update    core.CellUpdate
}

// monitorStream builds a seeded stream of nBatches batches over the dataset:
// each batch holds batchSize consequent-cell updates plus a few appends.
// Values are drawn from the column's existing pool plus occasional novel
// strings, so the stream exercises both re-verification outcomes and the
// names-table extend-on-intern path. Row ids respect the growing instance,
// so the same stream replays identically on any copy of the relation.
func monitorStream(ds *gen.Dataset, sigma core.Set, nBatches, batchSize, appendsPerBatch int, seed int64) [][]monitorOp {
	rng := rand.New(rand.NewSource(seed))
	rhsCols := make([]int, 0, len(sigma))
	for _, d := range sigma {
		rhsCols = append(rhsCols, d.RHS)
	}
	pools := make(map[int][]string, len(rhsCols))
	for _, c := range rhsCols {
		pools[c] = ds.Rel.Project(c)
	}
	nRows := ds.Rel.NumRows()
	batches := make([][]monitorOp, nBatches)
	for b := range batches {
		ops := make([]monitorOp, 0, batchSize+appendsPerBatch)
		for k := 0; k < batchSize; k++ {
			col := rhsCols[rng.Intn(len(rhsCols))]
			val := pools[col][rng.Intn(len(pools[col]))]
			if rng.Intn(50) == 0 { // novel, out-of-ontology value
				val = fmt.Sprintf("bench-novel-%d-%d", b, k)
			}
			ops = append(ops, monitorOp{update: core.CellUpdate{Row: rng.Intn(nRows), Col: col, Value: val}})
		}
		for k := 0; k < appendsPerBatch; k++ {
			row := ds.Rel.Row(rng.Intn(nRows))
			col := rhsCols[rng.Intn(len(rhsCols))]
			row[col] = pools[col][rng.Intn(len(pools[col]))]
			ops = append(ops, monitorOp{appendRow: row})
			nRows++
		}
		batches[b] = ops
	}
	return batches
}

// replayIncremental applies the stream through the monitor, flushing each
// batch's updates through one ApplyBatchContext call.
func replayIncremental(ctx context.Context, m *core.Monitor, batches [][]monitorOp) error {
	var updates []core.CellUpdate
	for _, ops := range batches {
		updates = updates[:0]
		for _, op := range ops {
			if op.appendRow != nil {
				if _, err := m.AppendRow(op.appendRow); err != nil {
					return err
				}
				continue
			}
			updates = append(updates, op.update)
		}
		if err := m.ApplyBatchContext(ctx, updates); err != nil {
			return err
		}
	}
	return nil
}

// replayRebuild applies the stream to a bare relation and pays a full
// DetectContext — fresh partitions, fresh verifier — after every batch,
// which is what maintaining a live violation report costs without the
// incremental engine. Returns the final report.
func replayRebuild(ctx context.Context, rel *relation.Relation, ds *gen.Dataset, sigma core.Set, batches [][]monitorOp, workers int, stats *exec.Stats) (*core.Report, error) {
	var rep *core.Report
	for _, ops := range batches {
		for _, op := range ops {
			if op.appendRow != nil {
				rel.AppendRow(op.appendRow)
				continue
			}
			rel.SetString(op.update.Row, op.update.Col, op.update.Value)
		}
		var err error
		rep, err = core.DetectContext(ctx, rel, ds.FullOnt, sigma, workers, stats)
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// monitorSigma narrows the planted Σ to monitorable dependencies (disjoint
// antecedents and consequents — true for the Clinical generator, but keep
// the bench robust to preset changes).
func monitorSigma(ds *gen.Dataset) core.Set {
	var lhs, rhs relation.AttrSet
	out := make(core.Set, 0, len(ds.Sigma))
	for _, d := range ds.Sigma {
		if !d.LHS.Intersect(rhs).IsEmpty() || lhs.Has(d.RHS) || d.LHS.Has(d.RHS) {
			continue
		}
		lhs = lhs.Union(d.LHS)
		rhs = rhs.With(d.RHS)
		out = append(out, d)
	}
	return out
}

// runMonitorBench measures incremental batch maintenance against full
// rebuilds and writes BENCH_monitor.json. smoke shrinks the grid to one
// small size with two batches for CI. A cancelled ctx stops between
// configurations; the rows measured so far are still written before the
// error returns.
func runMonitorBench(ctx context.Context, stats *exec.Stats, path string, rows int, smoke bool) error {
	sizes := []int{rows / 4, rows / 2, rows}
	batchPcts := []float64{0.1, 1.0} // percent of rows updated per batch
	nBatches := 4
	if smoke {
		sizes = []int{rows}
		batchPcts = []float64{1.0}
		nBatches = 2
	}

	report := monitorReport{
		GOOS:             runtime.GOOS,
		GOARCH:           runtime.GOARCH,
		NumCPU:           runtime.NumCPU(),
		Rows:             rows,
		ReportsIdentical: true,
		Stats:            stats,
	}
	partial := func(err error) error {
		if werr := writeBenchReport(path, report, report.Results, 30); werr != nil {
			return werr
		}
		fmt.Printf("wrote %s (partial)\n", path)
		return err
	}

	for _, n := range sizes {
		if n < 16 {
			continue
		}
		ds := gen.Clinical(n, 1)
		sigma := monitorSigma(ds)
		for _, pct := range batchPcts {
			batchSize := int(float64(n) * pct / 100)
			if batchSize < 1 {
				batchSize = 1
			}
			appends := batchSize / 20
			batches := monitorStream(ds, sigma, nBatches, batchSize, appends, 7)

			// Incremental maintenance at each worker count, on its own copy
			// of the instance; every run must converge to the same report.
			var incNs float64
			var incReports []string
			for _, workers := range []int{1, 0} {
				if err := exec.Interrupted(ctx, "monitorbench"); err != nil {
					return partial(err)
				}
				m, err := core.NewMonitorWorkers(ctx, ds.Rel.Clone(), ds.FullOnt, sigma, workers, stats)
				if err != nil {
					return partial(err)
				}
				start := time.Now()
				if err := replayIncremental(ctx, m, batches); err != nil {
					return partial(err)
				}
				elapsed := float64(time.Since(start).Nanoseconds())
				rep, err := json.Marshal(m.Report())
				if err != nil {
					return partial(err)
				}
				incReports = append(incReports, string(rep))
				report.Results = append(report.Results, benchResult{
					Name:       fmt.Sprintf("incremental-n%d-b%d-w%d", n, batchSize, workers),
					Iterations: nBatches,
					NsPerOp:    elapsed / float64(nBatches),
				})
				if workers == 0 {
					incNs = elapsed / float64(nBatches)
				}
			}

			// Full rebuild baseline (parallel partitions — its best case).
			if err := exec.Interrupted(ctx, "monitorbench"); err != nil {
				return partial(err)
			}
			rebuildRel := ds.Rel.Clone()
			start := time.Now()
			rep, err := replayRebuild(ctx, rebuildRel, ds, sigma, batches, 0, stats)
			if err != nil {
				return partial(err)
			}
			rebuildNs := float64(time.Since(start).Nanoseconds()) / float64(nBatches)
			report.Results = append(report.Results, benchResult{
				Name:       fmt.Sprintf("rebuild-n%d-b%d-w0", n, batchSize),
				Iterations: nBatches,
				NsPerOp:    rebuildNs,
			})

			rebuildJSON, err := json.Marshal(rep)
			if err != nil {
				return partial(err)
			}
			for _, r := range incReports {
				if r != string(rebuildJSON) {
					report.ReportsIdentical = false
					fmt.Fprintf(os.Stderr, "monitorbench: n=%d batch=%d: incremental report differs from fresh Detect\n", n, batchSize)
					break
				}
			}
			if n == sizes[len(sizes)-1] && pct == 1.0 && incNs > 0 {
				report.Speedup = rebuildNs / incNs
			}
		}
	}

	if err := writeBenchReport(path, report, report.Results, 30); err != nil {
		return err
	}
	fmt.Printf("incremental vs rebuild at n=%d, 1%% batches: %.1fx faster\n", sizes[len(sizes)-1], report.Speedup)
	fmt.Printf("reports identical to fresh Detect: %v\n", report.ReportsIdentical)
	fmt.Printf("wrote %s\n", path)
	return nil
}
