package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/gen"
	"github.com/fastofd/fastofd/internal/relation"
)

// rebuildCapRows caps the per-batch full-rebuild baseline: beyond this
// size a DetectContext after every batch dominates the wall clock without
// adding information (the incremental-vs-rebuild gap only grows with n).
// Larger sizes still get one final Detect as the byte-identity reference.
const rebuildCapRows = 250_000

// monitorReport is the machine-readable output of -monitorbench:
// incremental violation maintenance (Monitor.ApplyBatch + AppendRow)
// against full DetectContext rebuilds on identical update streams over
// the Clinical workload, swept across tuple counts, batch sizes, LHS-key
// shard counts, and worker counts.
type monitorReport struct {
	benchEnv
	Rows int `json:"rows"`
	// Shards and Cpus are the swept shard and worker counts (as given;
	// series names carry the effective values).
	Shards []int `json:"shards"`
	Cpus   []int `json:"cpus"`
	// Speedup is the incremental-vs-rebuild headline: full-rebuild ns over
	// best incremental ns at the largest size with a measured rebuild
	// baseline, 1%-of-rows batches.
	Speedup float64 `json:"speedup"`
	// ShardSpeedup compares the sharded monitor against the single-shard
	// one: best s=1 ns over best s>1 ns at the largest size, largest
	// batches (0 when the sweep has no multi-shard config). On a 1-CPU
	// host this hovers near 1.0 — sharding pays off with cores.
	ShardSpeedup float64 `json:"shard_speedup"`
	// ReportsIdentical records that, for every configuration, shard count,
	// and worker count, the monitor's final report was byte-identical (as
	// JSON) to a fresh Detect over the evolved instance.
	ReportsIdentical bool          `json:"reports_identical"`
	Results          []benchResult `json:"results"`
	// Cache aggregates the relation.PartitionCache counters across every
	// monitor the bench built: total hits/misses, and the peak
	// entries/bytes footprint of any single cache.
	Cache cacheTotals `json:"cache"`
	// Stats carries the monitor.build / monitor.route / monitor.apply /
	// monitor.merge / detect.verify spans accumulated across the runs.
	Stats *exec.Stats `json:"stats"`
}

// cacheTotals is the aggregated partition-cache block of monitorReport.
type cacheTotals struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	PeakEntries int    `json:"peak_entries"`
	PeakBytes   int64  `json:"peak_bytes"`
}

func (c *cacheTotals) add(st relation.CacheStats) {
	c.Hits += st.Hits
	c.Misses += st.Misses
	if st.Entries > c.PeakEntries {
		c.PeakEntries = st.Entries
	}
	if st.Bytes > c.PeakBytes {
		c.PeakBytes = st.Bytes
	}
}

// monitorOp is one element of a deterministic maintenance stream: either a
// cell update (part of the surrounding batch) or an appended tuple.
type monitorOp struct {
	appendRow []string // non-nil: append this tuple
	update    core.CellUpdate
}

// monitorStream builds a seeded stream of nBatches batches over the dataset:
// each batch holds batchSize consequent-cell updates plus a few appends.
// Values are drawn from the column's existing pool plus occasional novel
// strings, so the stream exercises both re-verification outcomes and the
// names-table extend-on-intern path. Row ids respect the growing instance,
// so the same stream replays identically on any copy of the relation.
func monitorStream(ds *gen.Dataset, sigma core.Set, nBatches, batchSize, appendsPerBatch int, seed int64) [][]monitorOp {
	rng := rand.New(rand.NewSource(seed))
	rhsCols := make([]int, 0, len(sigma))
	for _, d := range sigma {
		rhsCols = append(rhsCols, d.RHS)
	}
	pools := make(map[int][]string, len(rhsCols))
	for _, c := range rhsCols {
		pools[c] = ds.Rel.Project(c)
	}
	baseRows := ds.Rel.NumRows()
	nRows := baseRows
	batches := make([][]monitorOp, nBatches)
	for b := range batches {
		ops := make([]monitorOp, 0, batchSize+appendsPerBatch)
		for k := 0; k < batchSize; k++ {
			col := rhsCols[rng.Intn(len(rhsCols))]
			val := pools[col][rng.Intn(len(pools[col]))]
			if rng.Intn(50) == 0 { // novel, out-of-ontology value
				val = fmt.Sprintf("bench-novel-%d-%d", b, k)
			}
			ops = append(ops, monitorOp{update: core.CellUpdate{Row: rng.Intn(nRows), Col: col, Value: val}})
		}
		for k := 0; k < appendsPerBatch; k++ {
			// Appended tuples clone the *base* relation's rows (the stream is
			// generated before any op applies); update row ids may target the
			// whole growing instance, tracked by nRows.
			row := ds.Rel.Row(rng.Intn(baseRows))
			col := rhsCols[rng.Intn(len(rhsCols))]
			row[col] = pools[col][rng.Intn(len(pools[col]))]
			ops = append(ops, monitorOp{appendRow: row})
			nRows++
		}
		batches[b] = ops
	}
	return batches
}

// replayIncremental applies the stream through the monitor, flushing each
// batch's updates through one ApplyBatchContext call.
func replayIncremental(ctx context.Context, m *core.Monitor, batches [][]monitorOp) error {
	var updates []core.CellUpdate
	for _, ops := range batches {
		updates = updates[:0]
		for _, op := range ops {
			if op.appendRow != nil {
				if _, err := m.AppendRow(op.appendRow); err != nil {
					return err
				}
				continue
			}
			updates = append(updates, op.update)
		}
		if err := m.ApplyBatchContext(ctx, updates); err != nil {
			return err
		}
	}
	return nil
}

// replayRebuild applies the stream to a bare relation and pays a full
// DetectContext — fresh partitions, fresh verifier — after every batch,
// which is what maintaining a live violation report costs without the
// incremental engine. Returns the final report.
func replayRebuild(ctx context.Context, rel *relation.Relation, ds *gen.Dataset, sigma core.Set, batches [][]monitorOp, workers int, stats *exec.Stats) (*core.Report, error) {
	var rep *core.Report
	for _, ops := range batches {
		for _, op := range ops {
			if op.appendRow != nil {
				rel.AppendRow(op.appendRow)
				continue
			}
			rel.SetString(op.update.Row, op.update.Col, op.update.Value)
		}
		var err error
		rep, err = core.DetectContext(ctx, rel, ds.FullOnt, sigma, workers, stats)
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// detectEvolved applies the stream to a bare relation and runs one final
// Detect — the byte-identity reference when the per-batch rebuild
// baseline is capped out at large sizes.
func detectEvolved(ctx context.Context, rel *relation.Relation, ds *gen.Dataset, sigma core.Set, batches [][]monitorOp, stats *exec.Stats) (*core.Report, error) {
	for _, ops := range batches {
		for _, op := range ops {
			if op.appendRow != nil {
				rel.AppendRow(op.appendRow)
				continue
			}
			rel.SetString(op.update.Row, op.update.Col, op.update.Value)
		}
	}
	return core.DetectContext(ctx, rel, ds.FullOnt, sigma, 0, stats)
}

// monitorSigma narrows the planted Σ to monitorable dependencies (disjoint
// antecedents and consequents — true for the Clinical generator, but keep
// the bench robust to preset changes).
func monitorSigma(ds *gen.Dataset) core.Set {
	var lhs, rhs relation.AttrSet
	out := make(core.Set, 0, len(ds.Sigma))
	for _, d := range ds.Sigma {
		if !d.LHS.Intersect(rhs).IsEmpty() || lhs.Has(d.RHS) || d.LHS.Has(d.RHS) {
			continue
		}
		lhs = lhs.Union(d.LHS)
		rhs = rhs.With(d.RHS)
		out = append(out, d)
	}
	return out
}

// runMonitorBench measures incremental batch maintenance — single-shard
// vs sharded, across worker counts — against full rebuilds, and writes
// BENCH_monitor.json. The shard sweep always includes 1 so the sharded
// series has its single-shard baseline. smoke shrinks the grid to one
// size with two batches for CI. A cancelled ctx stops between
// configurations; the rows measured so far are still written before the
// error returns.
func runMonitorBench(ctx context.Context, stats *exec.Stats, path string, rows int, shardList, cpuList []int, smoke bool) error {
	sizes := []int{rows / 4, rows / 2, rows}
	batchPcts := []float64{0.1, 1.0} // percent of rows updated per batch
	nBatches := 4
	if smoke {
		sizes = []int{rows}
		batchPcts = []float64{1.0}
		nBatches = 2
	}
	// The single-shard baseline anchors the sharded series.
	if !containsInt(shardList, 1) {
		shardList = append([]int{1}, shardList...)
	}
	if len(cpuList) == 0 {
		cpuList = []int{0}
	}

	report := monitorReport{
		benchEnv:         newBenchEnv(),
		Rows:             rows,
		Shards:           shardList,
		Cpus:             cpuList,
		ReportsIdentical: true,
		Stats:            stats,
	}
	partial := partialWriter(path, &report, &report.Results, 30)

	for _, n := range sizes {
		if n < 16 {
			continue
		}
		ds := gen.Clinical(n, 1)
		sigma := monitorSigma(ds)
		for _, pct := range batchPcts {
			batchSize := int(float64(n) * pct / 100)
			if batchSize < 1 {
				batchSize = 1
			}
			appends := batchSize / 20
			batches := monitorStream(ds, sigma, nBatches, batchSize, appends, 7)

			// Incremental maintenance for every (shards, workers) combo, on
			// its own copy of the instance; every run must converge to the
			// same report. Effective shard counts dedup the grid (e.g.
			// shards=0 resolving to an explicit entry).
			type combo struct{ s, w int }
			seen := map[combo]bool{}
			var singleNs, shardedNs float64 // best s=1 / best s>1 at this config
			var incReports []string
			for _, s := range shardList {
				for _, w := range cpuList {
					if err := exec.Interrupted(ctx, "monitorbench"); err != nil {
						return partial(err)
					}
					m, err := core.NewMonitorSharded(ctx, ds.Rel.Clone(), ds.FullOnt, sigma, s, w, stats)
					if err != nil {
						return partial(err)
					}
					eff := combo{m.NumShards(), exec.Workers(w)}
					if seen[eff] {
						continue
					}
					seen[eff] = true
					start := time.Now()
					if err := replayIncremental(ctx, m, batches); err != nil {
						return partial(err)
					}
					perBatch := float64(time.Since(start).Nanoseconds()) / float64(nBatches)
					report.Cache.add(m.CacheStats())
					rep, err := json.Marshal(m.Report())
					if err != nil {
						return partial(err)
					}
					incReports = append(incReports, string(rep))
					report.Results = append(report.Results, benchResult{
						Name:       fmt.Sprintf("incremental-n%d-b%d-s%d-w%d", n, batchSize, eff.s, eff.w),
						Iterations: nBatches,
						NsPerOp:    perBatch,
					})
					if eff.s == 1 {
						if singleNs == 0 || perBatch < singleNs {
							singleNs = perBatch
						}
					} else if shardedNs == 0 || perBatch < shardedNs {
						shardedNs = perBatch
					}
				}
			}

			// Full rebuild baseline (parallel partitions — its best case),
			// capped at rebuildCapRows; larger sizes get one final Detect as
			// the byte-identity reference only.
			if err := exec.Interrupted(ctx, "monitorbench"); err != nil {
				return partial(err)
			}
			var refReport *core.Report
			var rebuildNs float64
			if n <= rebuildCapRows {
				rebuildRel := ds.Rel.Clone()
				start := time.Now()
				rep, err := replayRebuild(ctx, rebuildRel, ds, sigma, batches, 0, stats)
				if err != nil {
					return partial(err)
				}
				rebuildNs = float64(time.Since(start).Nanoseconds()) / float64(nBatches)
				refReport = rep
				report.Results = append(report.Results, benchResult{
					Name:       fmt.Sprintf("rebuild-n%d-b%d-w0", n, batchSize),
					Iterations: nBatches,
					NsPerOp:    rebuildNs,
				})
			} else {
				rep, err := detectEvolved(ctx, ds.Rel.Clone(), ds, sigma, batches, stats)
				if err != nil {
					return partial(err)
				}
				refReport = rep
			}

			refJSON, err := json.Marshal(refReport)
			if err != nil {
				return partial(err)
			}
			for _, r := range incReports {
				if r != string(refJSON) {
					report.ReportsIdentical = false
					fmt.Fprintf(os.Stderr, "monitorbench: n=%d batch=%d: incremental report differs from fresh Detect\n", n, batchSize)
					break
				}
			}
			if pct == batchPcts[len(batchPcts)-1] {
				if rebuildNs > 0 && singleNs > 0 {
					best := singleNs
					if shardedNs > 0 && shardedNs < best {
						best = shardedNs
					}
					report.Speedup = rebuildNs / best
				}
				if n == sizes[len(sizes)-1] && singleNs > 0 && shardedNs > 0 {
					report.ShardSpeedup = singleNs / shardedNs
				}
			}
		}
	}

	if err := writeBenchReport(path, report, report.Results, 30); err != nil {
		return err
	}
	fmt.Printf("incremental vs rebuild, 1%% batches: %.1fx faster\n", report.Speedup)
	if report.ShardSpeedup > 0 {
		fmt.Printf("sharded vs single-shard at n=%d: %.2fx (num_cpu=%d)\n", sizes[len(sizes)-1], report.ShardSpeedup, report.NumCPU)
	}
	fmt.Printf("reports identical to fresh Detect: %v\n", report.ReportsIdentical)
	fmt.Printf("wrote %s\n", path)
	return nil
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
