package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
)

// benchEnv is the machine header every bench artifact carries; embedding
// it flattens the fields into the report JSON, so artifact schemas are
// unchanged by where the fields live.
type benchEnv struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	NumCPU int    `json:"num_cpu"`
}

func newBenchEnv() benchEnv {
	return benchEnv{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, NumCPU: runtime.NumCPU()}
}

// benchResult is one machine-readable benchmark row. The fields mirror what
// `go test -bench -benchmem` prints, so regressions can be diffed by CI or
// scripts without parsing bench output.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// writeBenchReport marshals any report value to path and prints its rows.
func writeBenchReport(path string, report any, results []benchResult, width int) error {
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("%-*s %14.0f ns/op %12d B/op %10d allocs/op\n",
			width, r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	return nil
}

// partialWriter returns the shared interrupt handler of the bench modes:
// write the rows measured before the interrupt (report must be a pointer,
// results the report's live row slice), note the partial artifact, and
// hand the cause back so the caller exits with the interrupt status.
func partialWriter(path string, report any, results *[]benchResult, width int) func(error) error {
	return func(err error) error {
		if werr := writeBenchReport(path, report, *results, width); werr != nil {
			return werr
		}
		fmt.Printf("wrote %s (partial)\n", path)
		return err
	}
}
