package main

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/fastofd/fastofd/internal/emd"
	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/gen"
	"github.com/fastofd/fastofd/internal/repair"
)

// repairReport is the machine-readable output of -repairbench. It follows
// the BENCH_partition.json row format and adds end-to-end Clean timings,
// per-stage breakdowns, and the headline speedup of the indexed engine over
// the pre-index sequential baseline.
type repairReport struct {
	benchEnv
	Rows              int           `json:"rows"`
	Workers           int           `json:"workers"`
	Iterations        int           `json:"iterations"`
	SpeedupVsBaseline float64       `json:"speedup_vs_baseline"`
	Results           []benchResult `json:"results"`
	// Stats holds the repair engine's per-stage spans (clean.assign,
	// clean.beam, clean.materialize, ...) accumulated across the runs.
	Stats *exec.Stats `json:"stats"`
}

// cleanTiming is one measured Clean configuration: best-of-iters wall time
// plus allocation deltas from runtime.MemStats (Clean runs once per
// iteration — too slow for testing.Benchmark's auto-scaling at 4000 rows).
type cleanTiming struct {
	ns     float64
	bytes  int64
	allocs int64
	res    *repair.Result
}

func measureClean(ctx context.Context, ds *gen.Dataset, opts repair.Options, iters int) (cleanTiming, error) {
	best := cleanTiming{ns: 0}
	for i := 0; i < iters; i++ {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		res, err := repair.CleanContext(ctx, ds.Rel, ds.Ont, ds.Sigma, opts)
		elapsed := time.Since(start)
		if err != nil {
			return cleanTiming{}, err
		}
		runtime.ReadMemStats(&after)
		t := cleanTiming{
			ns:     float64(elapsed.Nanoseconds()),
			bytes:  int64(after.TotalAlloc - before.TotalAlloc),
			allocs: int64(after.Mallocs - before.Mallocs),
			res:    res,
		}
		if best.res == nil || t.ns < best.ns {
			best = t
		}
	}
	return best, nil
}

// runRepairBench measures the OFDClean repair engine on the Clinical
// workload and writes BENCH_repair.json. Three end-to-end configurations are
// compared: the pre-index sequential baseline (NoCoverageIndex, Workers=1),
// the indexed sequential engine, and the indexed engine at the default
// worker count. smoke reduces iterations to one for CI. A cancelled ctx
// stops the measurements; the rows finished so far are still written.
func runRepairBench(ctx context.Context, stats *exec.Stats, path string, rows int, smoke bool) error {
	ds := gen.Generate(gen.Config{Rows: rows, Seed: 1, ErrRate: 0.06, IncRate: 0.04, NumOFDs: 6})
	iters := 3
	if smoke {
		iters = 1
	}
	opts := func(workers int, noIndex bool) repair.Options {
		return repair.Options{Theta: 5, Beam: 3, Tau: 1, Workers: workers, NoCoverageIndex: noIndex, Stats: stats}
	}

	report := repairReport{
		benchEnv:   newBenchEnv(),
		Rows:       rows,
		Iterations: iters,
		Stats:      stats,
	}
	addClean := func(name string, t cleanTiming) {
		report.Results = append(report.Results, benchResult{
			Name: name, Iterations: iters, NsPerOp: t.ns, BytesPerOp: t.bytes, AllocsPerOp: t.allocs,
		})
	}
	partial := partialWriter(path, &report, &report.Results, 28)

	baseline, err := measureClean(ctx, ds, opts(1, true), iters)
	if err != nil {
		return partial(err)
	}
	addClean("clean-baseline-seq-noindex", baseline)
	seq, err := measureClean(ctx, ds, opts(1, false), iters)
	if err != nil {
		return partial(err)
	}
	addClean("clean-indexed-seq", seq)
	par, err := measureClean(ctx, ds, opts(0, false), iters)
	if err != nil {
		return partial(err)
	}
	addClean("clean-indexed-parallel", par)
	report.Workers = par.res.Workers
	report.SpeedupVsBaseline = baseline.ns / par.ns

	// Per-stage breakdown of the parallel run (durations from Result).
	stage := func(name string, d time.Duration) {
		report.Results = append(report.Results, benchResult{
			Name: name, Iterations: 1, NsPerOp: float64(d.Nanoseconds()),
		})
	}
	stage("stage-assign", par.res.AssignElapsed)
	stage("stage-assign-refine", par.res.RefineElapsed)
	stage("stage-repair", par.res.RepairElapsed)
	stage("stage-repair-beam", par.res.BeamElapsed)
	stage("stage-repair-materialize", par.res.MaterializeElapsed)

	// EMD micro-benchmarks: the string-keyed hot path must be alloc-free and
	// the int-keyed variant strictly cheaper.
	addMicro := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		report.Results = append(report.Results, benchResult{
			Name:       name,
			Iterations: r.N,
			NsPerOp:    float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp: r.AllocedBytesPerOp(), AllocsPerOp: r.AllocsPerOp(),
		})
	}
	p := emd.Hist{"cartia": 22, "tiazac": 11, "ASA": 7, "adizem": 3}
	q := emd.Hist{"cartia": 14, "ASA": 19, "ibuprofen": 5}
	addMicro("emd-workdistance", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			emd.WorkDistance(p, q)
		}
	})
	pi := emd.IntHist{0: 22, 1: 11, 2: 7, 3: 3}
	qi := emd.IntHist{0: 14, 2: 19, 4: 5}
	addMicro("emd-workdistance-int", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			emd.WorkDistanceInt(pi, qi)
		}
	})

	if err := writeBenchReport(path, report, report.Results, 28); err != nil {
		return err
	}
	fmt.Printf("speedup vs baseline: %.2fx (workers=%d, rows=%d)\n",
		report.SpeedupVsBaseline, report.Workers, rows)
	fmt.Printf("wrote %s\n", path)
	return nil
}
