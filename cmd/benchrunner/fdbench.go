package main

import (
	"context"
	"fmt"
	"os"
	"reflect"
	"testing"
	"time"

	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/fd"
	"github.com/fastofd/fastofd/internal/gen"
)

// fdReport is the machine-readable output of -fdbench. It follows the
// BENCH_partition.json row format and adds the Exp-1 runtime curve (every FD
// algorithm vs tuple count on the Clinical generator), agree-set
// micro-benchmarks against the pre-engine pair-enumeration baseline, and a
// determinism check of parallel vs sequential discovery.
type fdReport struct {
	benchEnv
	Rows int `json:"rows"`
	// AgreeSpeedup / AgreeAllocRatio are the headline engine-vs-baseline
	// ratios on the agree-set micro-bench at Rows tuples (sequential engine,
	// so the factor is algorithmic, not parallelism).
	AgreeSpeedup    float64 `json:"agree_speedup"`
	AgreeAllocRatio float64 `json:"agree_alloc_ratio"`
	// Deterministic records that every algorithm produced byte-identical
	// results with Workers=1 and Workers=NumCPU at Rows tuples.
	Deterministic bool          `json:"deterministic"`
	Results       []benchResult `json:"results"`
	// Stats holds the discovery engines' per-stage spans (fd.<algo>,
	// evidence.*) accumulated across every run of the curve.
	Stats *exec.Stats `json:"stats"`
}

// runFDBench measures the seven FD-discovery baselines on the Clinical
// workload and writes BENCH_fd.json. smoke shrinks the curve to one small
// size and single iterations for CI. A cancelled ctx stops between runs;
// the rows measured so far are still written before the error returns.
func runFDBench(ctx context.Context, stats *exec.Stats, path string, rows int, smoke bool) error {
	sizes := []int{rows / 8, rows / 4, rows / 2, rows}
	iters := 3
	if smoke {
		sizes = []int{rows}
		iters = 1
	}

	report := fdReport{
		benchEnv: newBenchEnv(),
		Rows:     rows,
		Stats:    stats,
	}
	partial := partialWriter(path, &report, &report.Results, 28)

	// Exp-1 curve: per-algorithm wall time (best of iters) at each size.
	discOpts := fd.DefaultOptions()
	discOpts.Stats = stats
	for _, n := range sizes {
		if n < 2 {
			continue
		}
		ds := gen.Clinical(n, 1)
		for _, alg := range fd.Algorithms() {
			var bestNs float64
			var nFDs int
			for it := 0; it < iters; it++ {
				start := time.Now()
				res, err := fd.DiscoverContext(ctx, alg, ds.Rel, discOpts)
				elapsed := float64(time.Since(start).Nanoseconds())
				if err != nil {
					return partial(err)
				}
				if it == 0 || elapsed < bestNs {
					bestNs = elapsed
				}
				nFDs = len(res.FDs)
			}
			report.Results = append(report.Results, benchResult{
				Name:       fmt.Sprintf("discover-%s-n%d", alg, n),
				Iterations: nFDs, // FD count doubles as a sanity payload
				NsPerOp:    bestNs,
			})
		}
	}

	// Agree-set micro-benchmarks at the base size: the cluster engine
	// (sequential and parallel) against the pre-engine pair-enumeration
	// baseline, with allocation accounting.
	if err := exec.Interrupted(ctx, "fdbench"); err != nil {
		return partial(err)
	}
	ds := gen.Clinical(rows, 1)
	addMicro := func(name string, fn func(b *testing.B)) benchResult {
		r := testing.Benchmark(fn)
		row := benchResult{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		report.Results = append(report.Results, row)
		return row
	}
	engine := addMicro("agree-engine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fd.ComputeEvidence(ds.Rel, fd.Options{Workers: 1})
		}
	})
	addMicro("agree-engine-parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fd.ComputeEvidence(ds.Rel, fd.Options{})
		}
	})
	baseline := addMicro("agree-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fd.AgreeSetsBaseline(ds.Rel)
		}
	})
	report.AgreeSpeedup = baseline.NsPerOp / engine.NsPerOp
	if engine.AllocsPerOp > 0 {
		report.AgreeAllocRatio = float64(baseline.AllocsPerOp) / float64(engine.AllocsPerOp)
	}

	// Determinism: parallel output must be byte-identical to sequential for
	// every algorithm at the base size.
	report.Deterministic = true
	for _, alg := range fd.Algorithms() {
		seq, err := fd.DiscoverContext(ctx, alg, ds.Rel, fd.Options{Workers: 1, Stats: stats})
		if err != nil {
			return partial(err)
		}
		par, err := fd.DiscoverContext(ctx, alg, ds.Rel, fd.Options{Workers: 0, Stats: stats})
		if err != nil {
			return partial(err)
		}
		if !reflect.DeepEqual(seq.FDs, par.FDs) || seq.RawCount != par.RawCount {
			report.Deterministic = false
			fmt.Fprintf(os.Stderr, "fdbench: %s parallel output differs from sequential\n", alg)
		}
	}

	if err := writeBenchReport(path, report, report.Results, 28); err != nil {
		return err
	}
	fmt.Printf("agree-set engine vs baseline: %.2fx faster, %.1fx fewer allocs (rows=%d)\n",
		report.AgreeSpeedup, report.AgreeAllocRatio, rows)
	fmt.Printf("deterministic across worker counts: %v\n", report.Deterministic)
	fmt.Printf("wrote %s\n", path)
	return nil
}
