package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/gen"
	"github.com/fastofd/fastofd/internal/relation"
)

// benchResult is one machine-readable benchmark row. The fields mirror what
// `go test -bench -benchmem` prints, so regressions can be diffed by CI or
// scripts without parsing bench output.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type benchReport struct {
	GOOS    string        `json:"goos"`
	GOARCH  string        `json:"goarch"`
	NumCPU  int           `json:"num_cpu"`
	Rows    int           `json:"rows"`
	Results []benchResult `json:"results"`
}

// runPartitionBench measures the partition-engine ablations (the
// stripped-partition product vs direct recomputation, and synonym vs
// FD-shortcut verification) via the testing.Benchmark harness and writes the
// results as JSON to path. These are the same workloads as
// BenchmarkAblationPartitionProduct / BenchmarkAblationVerify at the repo
// root; this entry point exists so perf numbers land in a file that scripts
// can compare across commits.
func runPartitionBench(path string, rows int) error {
	ds := gen.Clinical(rows, 1)
	pa := relation.SingleColumnPartition(ds.Rel, 2).Strip()
	pb := relation.SingleColumnPartition(ds.Rel, 3).Strip()
	pairAttrs := relation.Single(2).With(3)

	pc := relation.NewPartitionCache(ds.Rel)
	v := core.NewVerifier(ds.Rel, ds.FullOnt, pc)
	schema := ds.Rel.Schema()
	synOFD := core.MustParse(schema, "CC -> CTRY")
	fdOFD := core.MustParse(schema, "SYMP -> STUDY_TYPE")

	report := benchReport{
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
		Rows:   rows,
	}
	add := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		report.Results = append(report.Results, benchResult{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}

	add("partition-product", func(b *testing.B) {
		var buf relation.ProductBuffer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf.Product(pa, pb)
		}
	})
	add("partition-direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			relation.PartitionOf(ds.Rel, pairAttrs)
		}
	})
	add("verify-synonym-heavy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v.HoldsSyn(synOFD)
		}
	})
	add("verify-fd-fastpath", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v.HoldsSyn(fdOFD)
		}
	})

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	for _, r := range report.Results {
		fmt.Printf("%-22s %12.0f ns/op %10d B/op %8d allocs/op\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
