package main

import (
	"context"
	"fmt"
	"testing"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/gen"
	"github.com/fastofd/fastofd/internal/relation"
)

type benchReport struct {
	benchEnv
	Rows    int           `json:"rows"`
	Results []benchResult `json:"results"`
	// Stats is the per-stage span registry of the engine calls the bench
	// exercised, so CI artifacts carry stage-level timings next to the rows.
	Stats *exec.Stats `json:"stats"`
}

// runPartitionBench measures the partition-engine ablations (the
// stripped-partition product vs direct recomputation, and synonym vs
// FD-shortcut verification) via the testing.Benchmark harness and writes the
// results as JSON to path. These are the same workloads as
// BenchmarkAblationPartitionProduct / BenchmarkAblationVerify at the repo
// root; this entry point exists so perf numbers land in a file that scripts
// can compare across commits. A cancelled ctx stops between benchmark cases;
// the rows measured so far are still written before the error returns.
func runPartitionBench(ctx context.Context, stats *exec.Stats, path string, rows int) error {
	ds := gen.Clinical(rows, 1)
	pa := relation.SingleColumnPartition(ds.Rel, 2).Strip()
	pb := relation.SingleColumnPartition(ds.Rel, 3).Strip()
	pairAttrs := relation.Single(2).With(3)

	pc := relation.NewPartitionCache(ds.Rel)
	v := core.NewVerifier(ds.Rel, ds.FullOnt, pc)
	schema := ds.Rel.Schema()
	synOFD := core.MustParse(schema, "CC -> CTRY")
	fdOFD := core.MustParse(schema, "SYMP -> STUDY_TYPE")

	report := benchReport{
		benchEnv: newBenchEnv(),
		Rows:     rows,
		Stats:    stats,
	}
	add := func(name string, fn func(b *testing.B)) {
		if exec.Interrupted(ctx, "partitionbench") != nil {
			return // report whatever was measured before the interrupt
		}
		span := stats.Span("bench." + name)
		r := testing.Benchmark(fn)
		span.Items(r.N)
		span.End()
		report.Results = append(report.Results, benchResult{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}

	add("partition-product", func(b *testing.B) {
		var buf relation.ProductBuffer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf.Product(pa, pb)
		}
	})
	add("partition-direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			relation.PartitionOf(ds.Rel, pairAttrs)
		}
	})
	add("verify-synonym-heavy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v.HoldsSyn(synOFD)
		}
	})
	add("verify-fd-fastpath", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v.HoldsSyn(fdOFD)
		}
	})

	if err := writeBenchReport(path, report, report.Results, 22); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return exec.Interrupted(ctx, "partitionbench")
}
