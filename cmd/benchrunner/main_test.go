package main

import "testing"

func TestParseExpList(t *testing.T) {
	all, err := parseExpList("all")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 13; i++ {
		if !all[i] {
			t.Fatalf("all missing %d", i)
		}
	}
	if !all[15] {
		t.Fatal("all missing the qualitative experiment")
	}

	got, err := parseExpList("1,3,6-8, 14")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []int{1, 3, 6, 7, 8, 10} { // 14 folds into 10
		if !got[want] {
			t.Fatalf("missing %d in %v", want, got)
		}
	}
	if got[2] || got[5] {
		t.Fatalf("unexpected ids in %v", got)
	}

	for _, bad := range []string{"x", "3-1", "1-x"} {
		if _, err := parseExpList(bad); err == nil {
			t.Errorf("parseExpList(%q) should error", bad)
		}
	}
}
