package main

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/discovery"
	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/gen"
	"github.com/fastofd/fastofd/internal/pipeline"
	"github.com/fastofd/fastofd/internal/relation"
)

// pipelineReport is the machine-readable output of -pipelinebench: the
// merged discover→detect pipeline (one shared cache, verifier, and live
// overlay registry under both engines) against the separate engines (a
// maintainer and a monitor each on their own relation clone with their own
// cache) replaying identical seeded Clinical streams.
type pipelineReport struct {
	benchEnv
	Rows int `json:"rows"`
	// OneIndexSpeedup is the headline: separate-engines ns per batch over
	// merged-pipeline ns per batch at the largest size (both timings
	// include engine construction — the merged pipeline discovers and
	// warms once where the separate engines pay twice).
	OneIndexSpeedup float64 `json:"one_index_speedup"`
	// ReportsIdentical records that, for every configuration, the merged
	// pipeline's violation report was byte-identical (as JSON) to the
	// separate monitor's over the same evolved instance.
	ReportsIdentical bool `json:"reports_identical"`
	// CoverIdentical records the same for the maintained minimal cover.
	CoverIdentical bool          `json:"cover_identical"`
	Results        []benchResult `json:"results"`
	Stats          *exec.Stats   `json:"stats"`
}

// splitBatch separates one stream batch into its cell updates and its
// appended tuples, preserving order within each kind.
func splitBatch(ops []monitorOp) ([]core.CellUpdate, [][]string) {
	var updates []core.CellUpdate
	var appends [][]string
	for _, op := range ops {
		if op.appendRow != nil {
			appends = append(appends, op.appendRow)
			continue
		}
		updates = append(updates, op.update)
	}
	return updates, appends
}

// replayMerged builds a merged pipeline over a clone of the dataset and
// replays the stream through it, returning the final report and cover as
// canonical JSON. Construction is inside the timed region on purpose: the
// one-index claim includes paying discovery and cache warmup once.
func replayMerged(ctx context.Context, ds *gen.Dataset, batches [][]monitorOp, shards, workers int, stats *exec.Stats) (reportJSON, coverJSON string, err error) {
	p, err := pipeline.New(ctx, ds.Rel.Clone(), ds.FullOnt, pipeline.Options{
		Shards: shards, Workers: workers, Stats: stats,
	})
	if err != nil {
		return "", "", err
	}
	for _, ops := range batches {
		updates, appends := splitBatch(ops)
		if _, err := p.ApplyBatch(ctx, updates); err != nil {
			return "", "", err
		}
		if len(appends) > 0 {
			if _, err := p.AppendRows(appends); err != nil {
				return "", "", err
			}
		}
	}
	rep, err := json.Marshal(p.Report())
	if err != nil {
		return "", "", err
	}
	cov, err := json.Marshal(p.Cover())
	if err != nil {
		return "", "", err
	}
	return string(rep), string(cov), nil
}

// applyToRelation applies the updates to rel and returns the effective
// deduplicated write log sorted by (row, col) — the same shape the
// maintainer's LastWrites exposes, which is what the monitor's absorb
// path consumes (its ApplyBatch guards antecedent columns, but a
// discovered cover makes nearly every column an antecedent).
func applyToRelation(rel *relation.Relation, updates []core.CellUpdate) []core.CellWrite {
	type cell struct{ r, c int }
	eff := make(map[cell]core.CellWrite, len(updates))
	for _, u := range updates {
		k := cell{u.Row, u.Col}
		old := rel.Value(u.Row, u.Col)
		rel.SetString(u.Row, u.Col, u.Value)
		if w, seen := eff[k]; seen {
			w.New = rel.Value(u.Row, u.Col)
			eff[k] = w
			continue
		}
		eff[k] = core.CellWrite{Row: u.Row, Col: u.Col, Old: old, New: rel.Value(u.Row, u.Col)}
	}
	writes := make([]core.CellWrite, 0, len(eff))
	for _, w := range eff {
		if w.Old != w.New {
			writes = append(writes, w)
		}
	}
	sort.Slice(writes, func(a, b int) bool {
		if writes[a].Row != writes[b].Row {
			return writes[a].Row < writes[b].Row
		}
		return writes[a].Col < writes[b].Col
	})
	return writes
}

// replaySeparate builds the pre-merge engine pair — a maintainer and a
// monitor, each on its own clone with its own partition cache — and
// replays the same stream through both. The monitor watches the initial
// cover (the same set the merged pipeline monitors when Sigma is nil), so
// the two sides do identical semantic work: maintain the cover AND detect
// against the initial cover.
func replaySeparate(ctx context.Context, ds *gen.Dataset, batches [][]monitorOp, shards, workers int, stats *exec.Stats) (reportJSON, coverJSON string, err error) {
	dopts := discovery.DefaultOptions()
	dopts.Workers = workers
	dopts.Stats = stats
	mt, err := discovery.NewMaintainerContext(ctx, ds.Rel.Clone(), ds.FullOnt, dopts)
	if err != nil {
		return "", "", err
	}
	// The monitor gets its own clone, cache, and verifier — the pre-merge
	// shape. A discovered cover routinely chains dependencies (A→B, B→C),
	// so the relaxed live constructor is the one that accepts it; here it
	// runs on a private substrate instead of the pipeline's shared one.
	relD := ds.Rel.Clone()
	pcD, err := relation.NewPartitionCacheContext(ctx, relD, workers)
	if err != nil {
		return "", "", err
	}
	m, err := core.NewMonitorLive(ctx, relD, ds.FullOnt, mt.Cover().Clone(), shards, workers, stats, core.NewVerifier(relD, ds.FullOnt, pcD))
	if err != nil {
		return "", "", err
	}
	for _, ops := range batches {
		updates, appends := splitBatch(ops)
		if _, err := mt.ApplyBatchContext(ctx, updates); err != nil {
			return "", "", err
		}
		m.AbsorbBatch(applyToRelation(relD, updates))
		if len(appends) > 0 {
			if _, err := mt.AppendRows(appends); err != nil {
				return "", "", err
			}
			t0 := relD.NumRows()
			for _, row := range appends {
				relD.AppendRow(row)
			}
			m.AbsorbAppends(t0)
		}
	}
	rep, err := json.Marshal(m.Report())
	if err != nil {
		return "", "", err
	}
	cov, err := json.Marshal(mt.Cover())
	if err != nil {
		return "", "", err
	}
	return string(rep), string(cov), nil
}

// runPipelineBench measures the merged pipeline against the separate
// engine pair on identical Clinical streams and writes BENCH_pipeline.json.
// Every configuration must produce a byte-identical report and cover on
// both sides (reports_identical / cover_identical). smoke shrinks the grid
// to one size with two batches for CI. A cancelled ctx stops between
// configurations; the rows measured so far are still written.
func runPipelineBench(ctx context.Context, stats *exec.Stats, path string, rows int, cpuList []int, smoke bool) error {
	sizes := []int{rows / 2, rows}
	nBatches := 4
	if smoke {
		sizes = []int{rows}
		nBatches = 2
	}
	if len(cpuList) == 0 {
		cpuList = []int{1, 0}
	}

	report := pipelineReport{
		benchEnv:         newBenchEnv(),
		Rows:             rows,
		ReportsIdentical: true,
		CoverIdentical:   true,
		Stats:            stats,
	}
	partial := partialWriter(path, &report, &report.Results, 34)

	for _, n := range sizes {
		if n < 16 {
			continue
		}
		ds := gen.Clinical(n, 1)
		batchSize := n / 100
		if batchSize < 1 {
			batchSize = 1
		}
		appends := batchSize / 20
		batches := discoveryStream(ds, nBatches, batchSize, appends, 13)

		seen := map[int]bool{}
		for _, w := range cpuList {
			if err := exec.Interrupted(ctx, "pipelinebench"); err != nil {
				return partial(err)
			}
			eff := exec.Workers(w)
			if seen[eff] {
				continue
			}
			seen[eff] = true
			shards := 4

			// Each replay is one full construct-and-stream pass, so a single
			// timing is exposed to whatever else the host is doing for
			// seconds at a time; take the best of two passes per side (the
			// standard benchmark floor — noise only ever adds time). Smoke
			// runs keep it too: the CI gate compares the two sides, and one
			// noisy pass on a shared runner would flake it.
			reps := 2
			measure := func(replay func() (string, string, error)) (float64, string, string, error) {
				best := 0.0
				var rep, cov string
				for i := 0; i < reps; i++ {
					start := time.Now()
					r, c, err := replay()
					if err != nil {
						return 0, "", "", err
					}
					ns := float64(time.Since(start).Nanoseconds()) / float64(nBatches)
					if i == 0 || ns < best {
						best = ns
					}
					rep, cov = r, c
				}
				return best, rep, cov, nil
			}

			mergedNs, mergedRep, mergedCov, err := measure(func() (string, string, error) {
				return replayMerged(ctx, ds, batches, shards, w, stats)
			})
			if err != nil {
				return partial(err)
			}

			sepNs, sepRep, sepCov, err := measure(func() (string, string, error) {
				return replaySeparate(ctx, ds, batches, shards, w, stats)
			})
			if err != nil {
				return partial(err)
			}

			if mergedRep != sepRep {
				report.ReportsIdentical = false
				fmt.Printf("pipelinebench: n=%d w=%d: merged report differs from separate engines\n", n, eff)
			}
			if mergedCov != sepCov {
				report.CoverIdentical = false
				fmt.Printf("pipelinebench: n=%d w=%d: merged cover differs from separate engines\n", n, eff)
			}
			report.Results = append(report.Results,
				benchResult{Name: fmt.Sprintf("merged-n%d-w%d", n, eff), Iterations: nBatches, NsPerOp: mergedNs},
				benchResult{Name: fmt.Sprintf("separate-n%d-w%d", n, eff), Iterations: nBatches, NsPerOp: sepNs},
			)
			if n == sizes[len(sizes)-1] && mergedNs > 0 {
				report.OneIndexSpeedup = sepNs / mergedNs
			}
		}
	}

	if err := writeBenchReport(path, report, report.Results, 34); err != nil {
		return err
	}
	fmt.Printf("merged pipeline vs separate engines: %.2fx faster (one shared index)\n", report.OneIndexSpeedup)
	fmt.Printf("reports identical: %v, covers identical: %v\n", report.ReportsIdentical, report.CoverIdentical)
	fmt.Printf("wrote %s\n", path)
	return nil
}
