package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/discovery"
	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/gen"
	"github.com/fastofd/fastofd/internal/relation"
	"github.com/fastofd/fastofd/internal/snapshot"
)

// sweepCapRows caps the eviction-policy sweep size: partition Gets are
// linear in the row count, so beyond this the sweep dominates the bench
// wall clock while the budget/policy behaviour it measures is unchanged.
const sweepCapRows = 100_000

// storageReport is the machine-readable output of -storagebench: the
// instant-restart headline (cold Monitor + Maintainer build vs snapshot
// reopen, with byte-identity of the first post-reopen Report and cover)
// and the byte-budgeted partition-cache sweep (cost-model vs level-sweep
// eviction at several budgets over one deterministic access trace).
type storageReport struct {
	benchEnv
	Rows int `json:"rows"`
	// SnapshotBytes is the on-disk size of the saved state: relation
	// blocks, ontology, cached partitions, monitor indexes, cover.
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// ColdBuildNs is the restart cost without snapshots: NewMonitorSharded
	// plus NewMaintainerContext (a full discovery) over the generated
	// instance. SaveNs/ReopenNs are the snapshot path; ReopenSpeedup is
	// the headline ColdBuildNs / ReopenNs.
	ColdBuildNs   float64 `json:"cold_build_ns"`
	SaveNs        float64 `json:"save_ns"`
	ReopenNs      float64 `json:"reopen_ns"`
	ReopenSpeedup float64 `json:"reopen_speedup"`
	// SnapshotIdentical records that the reopened monitor's first Report
	// and the reopened maintainer's cover were byte-identical (as JSON) to
	// the live ones, and that replaying one identical update stream on the
	// live and reopened monitors kept the reports byte-identical.
	SnapshotIdentical bool `json:"snapshot_identical"`
	// SweepRows is the instance size of the eviction sweep (rows capped at
	// sweepCapRows); Sweep holds one row per (budget, policy) pair over the
	// shared deterministic trace.
	SweepRows int        `json:"sweep_rows"`
	Sweep     []sweepRow `json:"sweep"`
	// BudgetRespected records that every budgeted configuration kept the
	// cache payload within budget + one in-flight partition after every
	// Get. CostModelNoWorse records that at every budget the cost-model
	// policy's hit rate was at least the level-sweep baseline's.
	BudgetRespected  bool          `json:"budget_respected"`
	CostModelNoWorse bool          `json:"cost_model_no_worse"`
	Results          []benchResult `json:"results"`
	// Cache aggregates the monitor partition-cache counters of the restart
	// experiment (the sweep caches are reported per-row in Sweep).
	Cache cacheTotals `json:"cache"`
	// Stats carries the monitor.build / maintain.build / discovery spans
	// accumulated across the runs.
	Stats *exec.Stats `json:"stats"`
}

// sweepRow is one (budget, policy) cell of the eviction sweep. Hits and
// Misses are top-level trace outcomes — whether each requested set
// answered from cache — so the rate compares policies fairly regardless
// of how deep their miss-path rebuilds recurse; Evictions is the
// trace-only delta (CacheStats.Since from the post-warmup snapshot).
type sweepRow struct {
	Policy      string  `json:"policy"`
	BudgetBytes int64   `json:"budget_bytes"`
	BudgetFrac  float64 `json:"budget_frac"` // of the unbounded trace footprint
	Hits        uint64  `json:"hits"`
	Misses      uint64  `json:"misses"`
	HitRate     float64 `json:"hit_rate"`
	Evictions   uint64  `json:"evictions"`
	// PeakBytes is the largest payload observed after any Get of the
	// trace; WithinBudget asserts it never exceeded budget + the largest
	// single partition (the one in-flight insert the contract allows).
	PeakBytes    int64 `json:"peak_bytes"`
	WithinBudget bool  `json:"within_budget"`
}

// storageTrace builds the deterministic partition-access trace the
// eviction sweep replays: a small hot set of multi-attribute sets
// dominates (~70% of accesses, skewed), the rest are colder uniform
// draws over levels 1–3. The same seed always yields the same trace, so
// policy comparisons are exact.
func storageTrace(cols, ops int, seed int64) []relation.AttrSet {
	rng := rand.New(rand.NewSource(seed))
	randomSet := func(k int) relation.AttrSet {
		s := relation.EmptySet
		for _, c := range rng.Perm(cols)[:k] {
			s = s.With(c)
		}
		return s
	}
	hot := make([]relation.AttrSet, 4)
	for i := range hot {
		hot[i] = randomSet(2 + i%2)
	}
	trace := make([]relation.AttrSet, 0, ops)
	for i := 0; i < ops; i++ {
		if rng.Intn(10) < 7 {
			// Skewed: hot[0] twice as likely as hot[3].
			trace = append(trace, hot[rng.Intn(len(hot))*(1+rng.Intn(2))/2])
		} else {
			trace = append(trace, randomSet(1+rng.Intn(3)))
		}
	}
	return trace
}

// traceRun is one replayed trace's outcome: top-level hit/miss counts
// (per trace op — recursive subset rebuilds inside a miss are excluded,
// so the rate is comparable across policies with different rebuild
// depths), the trace-only counter deltas, the observed post-Get payload
// peak, and the wall time.
type traceRun struct {
	hits, misses uint64
	delta        relation.CacheStats
	peak         int64
	ns           float64
}

// replayTrace replays the trace against a fresh cache configured with the
// given budget and policy. A zero budget leaves the cache unbounded (the
// footprint-reference run).
func replayTrace(rel *relation.Relation, trace []relation.AttrSet, budget int64, policy relation.EvictionPolicy) traceRun {
	pc := relation.NewPartitionCacheParallel(rel, 0)
	pc.SetPolicy(policy)
	if budget > 0 {
		pc.SetBudget(budget)
	}
	prev := pc.Stats()
	var run traceRun
	var buf relation.ProductBuffer
	lastMisses := prev.Misses
	start := time.Now()
	for _, attrs := range trace {
		pc.GetWith(attrs, &buf)
		st := pc.Stats()
		// A trace op hit at the top level iff the Get caused no miss at
		// all (a top-level hit never recurses).
		if st.Misses == lastMisses {
			run.hits++
		} else {
			run.misses++
		}
		lastMisses = st.Misses
		if st.Bytes > run.peak {
			run.peak = st.Bytes
		}
	}
	run.ns = float64(time.Since(start).Nanoseconds())
	run.delta = pc.Stats().Since(prev)
	return run
}

// runStorageBench measures the storage tier and writes BENCH_storage.json:
// a cold Monitor+Maintainer build vs snapshot Save/Open at rows tuples
// (asserting byte-identical reports and cover, and identical evolution
// under one replayed update stream), then the eviction-policy sweep at
// several byte budgets. smoke shrinks the trace and budget grid for CI. A
// cancelled ctx stops between stages; the rows measured so far are still
// written before the error returns.
func runStorageBench(ctx context.Context, stats *exec.Stats, path string, rows int, smoke bool) error {
	report := storageReport{
		benchEnv:          newBenchEnv(),
		Rows:              rows,
		SnapshotIdentical: true,
		BudgetRespected:   true,
		CostModelNoWorse:  true,
		Stats:             stats,
	}
	partial := partialWriter(path, &report, &report.Results, 30)
	addRow := func(name string, ns float64) {
		report.Results = append(report.Results, benchResult{Name: name, Iterations: 1, NsPerOp: ns})
	}

	// --- Instant restart: cold build vs snapshot reopen -----------------
	ds := gen.Clinical(rows, 1)
	sigma := monitorSigma(ds)

	start := time.Now()
	m, err := core.NewMonitorSharded(ctx, ds.Rel, ds.FullOnt, sigma, 4, 0, stats)
	if err != nil {
		return partial(err)
	}
	monitorNs := float64(time.Since(start).Nanoseconds())
	addRow("cold-monitor-build", monitorNs)

	dopts := discovery.DefaultOptions()
	dopts.Stats = stats
	start = time.Now()
	mt, err := discovery.NewMaintainerContext(ctx, ds.Rel, ds.FullOnt, dopts)
	if err != nil {
		return partial(err)
	}
	maintainerNs := float64(time.Since(start).Nanoseconds())
	addRow("cold-maintainer-build", maintainerNs)
	report.ColdBuildNs = monitorNs + maintainerNs

	liveReport, err := json.Marshal(m.Report())
	if err != nil {
		return partial(err)
	}
	liveCover, err := json.Marshal(mt.Cover())
	if err != nil {
		return partial(err)
	}

	dir, err := os.MkdirTemp("", "storagebench-")
	if err != nil {
		return partial(err)
	}
	defer os.RemoveAll(dir)
	snapPath := filepath.Join(dir, "state.snapshot")
	st := &snapshot.State{Relation: ds.Rel, Ontology: ds.FullOnt, Cache: m.Partitions(), Monitor: m, Maintainer: mt}
	start = time.Now()
	if err := snapshot.Save(snapPath, st); err != nil {
		return partial(err)
	}
	report.SaveNs = float64(time.Since(start).Nanoseconds())
	addRow("snapshot-save", report.SaveNs)
	if fi, err := os.Stat(snapPath); err == nil {
		report.SnapshotBytes = fi.Size()
	}

	start = time.Now()
	re, err := snapshot.Open(snapPath, snapshot.Options{Workers: 0, Stats: stats})
	if err != nil {
		return partial(err)
	}
	report.ReopenNs = float64(time.Since(start).Nanoseconds())
	addRow("snapshot-reopen", report.ReopenNs)
	report.ReopenSpeedup = report.ColdBuildNs / report.ReopenNs

	// First post-reopen report and cover must be byte-identical to the
	// live ones.
	reReport, err := json.Marshal(re.Monitor.Report())
	if err != nil {
		return partial(err)
	}
	reCover, err := json.Marshal(re.Maintainer.Cover())
	if err != nil {
		return partial(err)
	}
	if string(reReport) != string(liveReport) {
		report.SnapshotIdentical = false
		fmt.Fprintln(os.Stderr, "storagebench: reopened monitor report differs from live report")
	}
	if string(reCover) != string(liveCover) {
		report.SnapshotIdentical = false
		fmt.Fprintln(os.Stderr, "storagebench: reopened maintainer cover differs from live cover")
	}

	// The reopened monitor must also evolve identically: replay one
	// identical update stream on both instances and compare again. (The
	// maintainers are not touched past this point — the stream mutates the
	// shared relations through the monitors.)
	evolveBatch := rows / 100
	if evolveBatch > 500 {
		evolveBatch = 500
	}
	if evolveBatch < 10 {
		evolveBatch = 10
	}
	stream := monitorStream(ds, sigma, 1, evolveBatch, 20, 7)
	reDS := &gen.Dataset{Rel: re.Relation}
	reStream := monitorStream(reDS, sigma, 1, evolveBatch, 20, 7)
	if err := replayIncremental(ctx, m, stream); err != nil {
		return partial(err)
	}
	if err := replayIncremental(ctx, re.Monitor, reStream); err != nil {
		return partial(err)
	}
	liveEvolved, err := json.Marshal(m.Report())
	if err != nil {
		return partial(err)
	}
	reEvolved, err := json.Marshal(re.Monitor.Report())
	if err != nil {
		return partial(err)
	}
	if string(liveEvolved) != string(reEvolved) || m.Epoch() != re.Monitor.Epoch() {
		report.SnapshotIdentical = false
		fmt.Fprintln(os.Stderr, "storagebench: post-reopen evolution diverged between live and reopened monitors")
	}
	report.Cache.add(m.Partitions().Stats())
	report.Cache.add(re.Cache.Stats())

	if err := exec.Interrupted(ctx, "storagebench"); err != nil {
		return partial(err)
	}

	// --- Eviction-policy sweep ------------------------------------------
	sweepRows := rows
	if sweepRows > sweepCapRows {
		sweepRows = sweepCapRows
	}
	report.SweepRows = sweepRows
	sds := ds
	if sweepRows != rows {
		sds = gen.Clinical(sweepRows, 1)
	}
	ops := 600
	fracs := []float64{0.5, 0.25, 0.1}
	if smoke {
		ops = 200
		fracs = []float64{0.5, 0.1}
	}
	trace := storageTrace(sds.Rel.NumCols(), ops, 7)

	// Unbounded reference run: its steady-state footprint anchors the
	// budget fractions, and its largest single partition is the allowed
	// one-in-flight overshoot.
	ref := replayTrace(sds.Rel, trace, 0, relation.EvictCostModel)
	addRow("sweep-unbounded", ref.ns)
	var maxEntry int64
	{
		pc := relation.NewPartitionCacheParallel(sds.Rel, 0)
		var buf relation.ProductBuffer
		for _, attrs := range trace {
			p := pc.GetWith(attrs, &buf)
			if b := int64(4 * (len(p.Tuples) + len(p.Offsets))); b > maxEntry {
				maxEntry = b
			}
		}
	}

	policies := []struct {
		name string
		p    relation.EvictionPolicy
	}{
		{"cost-model", relation.EvictCostModel},
		{"level-sweep", relation.EvictLevelSweep},
	}
	for _, frac := range fracs {
		if err := exec.Interrupted(ctx, "storagebench"); err != nil {
			return partial(err)
		}
		budget := int64(float64(ref.peak) * frac)
		if budget < maxEntry {
			budget = maxEntry
		}
		var rates [2]float64
		for pi, pol := range policies {
			run := replayTrace(sds.Rel, trace, budget, pol.p)
			rate := 0.0
			if run.hits+run.misses > 0 {
				rate = float64(run.hits) / float64(run.hits+run.misses)
			}
			rates[pi] = rate
			within := run.peak <= budget+maxEntry
			if !within {
				report.BudgetRespected = false
				fmt.Fprintf(os.Stderr, "storagebench: %s at %d bytes peaked at %d (> budget + %d)\n",
					pol.name, budget, run.peak, maxEntry)
			}
			report.Sweep = append(report.Sweep, sweepRow{
				Policy:       pol.name,
				BudgetBytes:  budget,
				BudgetFrac:   frac,
				Hits:         run.hits,
				Misses:       run.misses,
				HitRate:      rate,
				Evictions:    run.delta.Evictions,
				PeakBytes:    run.peak,
				WithinBudget: within,
			})
			addRow(fmt.Sprintf("sweep-%s-b%02.0f", pol.name, frac*100), run.ns)
		}
		if rates[0] < rates[1] {
			report.CostModelNoWorse = false
			fmt.Fprintf(os.Stderr, "storagebench: cost-model hit rate %.3f below level-sweep %.3f at %d bytes\n",
				rates[0], rates[1], budget)
		}
	}

	if err := writeBenchReport(path, report, report.Results, 30); err != nil {
		return err
	}
	fmt.Printf("snapshot reopen: %.1fx faster than cold build (%.0fms vs %.0fms, %d rows, %d snapshot bytes)\n",
		report.ReopenSpeedup, report.ReopenNs/1e6, report.ColdBuildNs/1e6, rows, report.SnapshotBytes)
	fmt.Printf("snapshot identical: %v; budget respected: %v; cost-model no worse: %v\n",
		report.SnapshotIdentical, report.BudgetRespected, report.CostModelNoWorse)
	fmt.Printf("wrote %s\n", path)
	return exec.Interrupted(ctx, "storagebench")
}
