package main

import (
	"fmt"
	"time"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/discovery"
	"github.com/fastofd/fastofd/internal/fd"
	"github.com/fastofd/fastofd/internal/gen"
	"github.com/fastofd/fastofd/internal/holoclean"
	"github.com/fastofd/fastofd/internal/metrics"
	"github.com/fastofd/fastofd/internal/relation"
	"github.com/fastofd/fastofd/internal/repair"
)

// pairBasedLimit caps the tuple count for the quadratic, pair-based FD
// algorithms (DepMiner, FastFDs, FDep), mirroring the paper's observation
// that they time out / exhaust memory beyond modest sizes. The cluster-based
// evidence engine removed the per-pair dedup map (memory is no longer the
// binding constraint), so the cap sits one doubling higher than before —
// the remaining cost is the inherently quadratic pair visiting.
const pairBasedLimit = 8000

func isPairBased(alg string) bool {
	return alg == fd.DepMiner || alg == fd.FastFDs || alg == fd.FDep
}

// exp1VaryN reproduces Fig 7a / Table 6: runtime vs number of tuples for
// FastOFD and the seven FD discovery baselines on the clinical workload.
func exp1VaryN(cfg runConfig) {
	sizes := []int{cfg.discRows / 4, cfg.discRows / 2, cfg.discRows, cfg.discRows * 2, cfg.discRows * 4}
	fmt.Printf("%-10s", "N")
	for _, n := range sizes {
		fmt.Printf("%12d", n)
	}
	fmt.Println()
	// FastOFD row first (with ontology), then the FD baselines.
	fmt.Printf("%-10s", "FastOFD")
	for _, n := range sizes {
		ds := gen.Clinical(n, 1)
		start := time.Now()
		res := discovery.Discover(ds.Rel, ds.FullOnt, discovery.DefaultOptions())
		fmt.Printf("%12s", fmt.Sprintf("%.2fs/%d", time.Since(start).Seconds(), len(res.OFDs)))
	}
	fmt.Println()
	// Inheritance discovery (the conference version reports ~2.4x overhead
	// for inheritance vs ~1.8x for synonym OFDs).
	fmt.Printf("%-10s", "FastOFD-inh")
	for _, n := range sizes {
		ds := gen.Clinical(n, 1)
		opts := discovery.DefaultOptions()
		opts.Mode = discovery.ModeInheritance
		opts.Theta = 2
		start := time.Now()
		res := discovery.Discover(ds.Rel, ds.FullOnt, opts)
		fmt.Printf("%12s", fmt.Sprintf("%.2fs/%d", time.Since(start).Seconds(), len(res.OFDs)))
	}
	fmt.Println()
	for _, alg := range fd.Algorithms() {
		fmt.Printf("%-10s", alg)
		for _, n := range sizes {
			if isPairBased(alg) && n > pairBasedLimit {
				fmt.Printf("%12s", "(skipped)")
				continue
			}
			ds := gen.Clinical(n, 1)
			start := time.Now()
			res, err := fd.Discover(alg, ds.Rel)
			if err != nil {
				fmt.Printf("%12s", "err")
				continue
			}
			fmt.Printf("%12s", fmt.Sprintf("%.2fs/%d", time.Since(start).Seconds(), len(res.FDs)))
		}
		fmt.Println()
	}
	fmt.Println("cells: runtime seconds / dependencies found; pair-based algorithms")
	fmt.Println("(depminer, fastfds, fdep) skipped beyond", pairBasedLimit, "tuples as in the paper.")
}

// exp2VaryAttrs reproduces Fig 7b: runtime vs number of attributes.
func exp2VaryAttrs(cfg runConfig) {
	ns := []int{4, 6, 8, 10, 12, 15}
	base := gen.Clinical(cfg.discRows/4, 1)
	fmt.Printf("%-10s", "n")
	for _, n := range ns {
		fmt.Printf("%12d", n)
	}
	fmt.Println()
	project := func(n int) *relation.Relation {
		cols := make([]int, n)
		for i := range cols {
			cols[i] = i
		}
		sub, err := base.Rel.ProjectColumns(cols)
		if err != nil {
			panic(err)
		}
		return sub
	}
	fmt.Printf("%-10s", "FastOFD")
	for _, n := range ns {
		sub := project(n)
		start := time.Now()
		res := discovery.Discover(sub, base.FullOnt, discovery.DefaultOptions())
		fmt.Printf("%12s", fmt.Sprintf("%.2fs/%d", time.Since(start).Seconds(), len(res.OFDs)))
	}
	fmt.Println()
	for _, alg := range []string{fd.TANE, fd.FUN, fd.DFD, fd.FDep} {
		fmt.Printf("%-10s", alg)
		for _, n := range ns {
			sub := project(n)
			start := time.Now()
			res, _ := fd.Discover(alg, sub)
			fmt.Printf("%12s", fmt.Sprintf("%.2fs/%d", time.Since(start).Seconds(), len(res.FDs)))
		}
		fmt.Println()
	}
}

// exp3Optimizations reproduces Fig 7c: FastOFD runtime with pruning rules
// individually disabled.
func exp3Optimizations(cfg runConfig) {
	ds := gen.Clinical(cfg.discRows, 1)
	configs := []struct {
		name string
		opts discovery.Options
	}{
		{"none", discovery.Options{}},
		{"opt2", discovery.Options{PruneAugmentation: true}},
		{"opt2+3", discovery.Options{PruneAugmentation: true, PruneKeys: true}},
		{"opt2+4", discovery.Options{PruneAugmentation: true, FDShortcut: true}},
		{"all", discovery.DefaultOptions()},
	}
	var baseline float64
	for _, c := range configs {
		// Best of three runs, to keep GC noise out of the small deltas
		// between Opt-3/Opt-4 configurations.
		var sec float64
		var res *discovery.Result
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			res = discovery.Discover(ds.Rel, ds.FullOnt, c.opts)
			if s := time.Since(start).Seconds(); rep == 0 || s < sec {
				sec = s
			}
		}
		if c.name == "none" {
			baseline = sec
		}
		improvement := 0.0
		if baseline > 0 {
			improvement = 100 * (baseline - sec) / baseline
		}
		fmt.Printf("%-8s %8.2fs   %5d candidates checked   %d OFDs   %+.0f%% vs none\n",
			c.name, sec, res.CandidatesChecked, len(res.OFDs), improvement)
	}
}

// exp4LatticeLevels reproduces the lattice-level efficiency analysis:
// where the OFDs are found and where the time goes.
func exp4LatticeLevels(cfg runConfig) {
	ds := gen.Clinical(cfg.discRows, 1)
	res := discovery.Discover(ds.Rel, ds.FullOnt, discovery.DefaultOptions())
	var totalTime time.Duration
	total := 0
	for _, ls := range res.Levels {
		totalTime += ls.Elapsed
		total += ls.Discovered
	}
	fmt.Printf("%-6s %10s %10s %12s %10s %10s\n", "level", "nodes", "OFDs", "time", "cum OFDs%", "cum time%")
	cumOFD, cumTime := 0, time.Duration(0)
	for _, ls := range res.Levels {
		cumOFD += ls.Discovered
		cumTime += ls.Elapsed
		fmt.Printf("%-6d %10d %10d %12s %9.0f%% %9.0f%%\n",
			ls.Level, ls.Nodes, ls.Discovered, ls.Elapsed.Round(time.Millisecond),
			100*float64(cumOFD)/float64(max(total, 1)),
			100*float64(cumTime)/float64(max64(totalTime, 1)))
	}
	fmt.Printf("total: %d OFDs in %s\n", total, totalTime.Round(time.Millisecond))
}

// exp5FalsePositives reproduces the false-positive analysis: the fraction
// of tuples whose consequent differs syntactically but is synonymous —
// tuples an FD-based cleaner would flag as errors and an OFD keeps clean.
func exp5FalsePositives(cfg runConfig) {
	ds := gen.Clinical(cfg.discRows, 1)
	res := discovery.Discover(ds.Rel, ds.FullOnt, discovery.DefaultOptions())
	v := core.NewVerifier(ds.Rel, ds.FullOnt, nil)
	type agg struct {
		sum float64
		n   int
	}
	byLevel := make(map[int]*agg)
	for _, d := range res.OFDs {
		lvl := d.LHS.Len() // paper's level: antecedent size
		frac := v.NonEqualConsequentFraction(d)
		if frac == 0 {
			continue // plain FD; nothing saved
		}
		a := byLevel[lvl]
		if a == nil {
			a = &agg{}
			byLevel[lvl] = a
		}
		a.sum += frac
		a.n++
	}
	fmt.Printf("%-6s %12s %24s\n", "level", "syn OFDs", "avg non-equal tuples")
	for lvl := 1; lvl <= 16; lvl++ {
		if a, ok := byLevel[lvl]; ok {
			fmt.Printf("%-6d %12d %23.0f%%\n", lvl, a.n, 100*a.sum/float64(a.n))
		}
	}
}

// senseSweep runs Clean over seeds and averages sense accuracy.
func senseSweep(cfg runConfig, mk func(seed int64) gen.Config) (p, r, secs float64) {
	for s := 1; s <= cfg.seeds; s++ {
		ds := gen.Generate(mk(int64(s)))
		start := time.Now()
		res, err := repair.Clean(ds.Rel, ds.Ont, ds.Sigma, repair.DefaultOptions())
		if err != nil {
			panic(err)
		}
		secs += time.Since(start).Seconds()
		pr := metrics.SenseAccuracy(ds, res.Assignment)
		p += pr.Precision
		r += pr.Recall
	}
	k := float64(cfg.seeds)
	return p / k, r / k, secs / k
}

// exp6VarySenses reproduces Fig 8a,b: sense-selection accuracy and time as
// the number of senses |λ| grows.
func exp6VarySenses(cfg runConfig) {
	fmt.Printf("%-8s %10s %10s %10s\n", "|λ|", "precision", "recall", "time")
	for _, nl := range []int{2, 4, 6, 8, 10} {
		p, r, secs := senseSweep(cfg, func(seed int64) gen.Config {
			return gen.Config{Rows: cfg.rows, Seed: seed, Senses: nl, ErrRate: 0.03, NumOFDs: 6}
		})
		fmt.Printf("%-8d %9.1f%% %9.1f%% %9.2fs\n", nl, 100*p, 100*r, secs)
	}
}

// exp7VaryErr reproduces Fig 8c,d: sense selection vs error rate.
func exp7VaryErr(cfg runConfig) {
	fmt.Printf("%-8s %10s %10s %10s\n", "err%", "precision", "recall", "time")
	for _, er := range []float64{0.03, 0.06, 0.09, 0.12, 0.15} {
		p, r, secs := senseSweep(cfg, func(seed int64) gen.Config {
			return gen.Config{Rows: cfg.rows, Seed: seed, ErrRate: er, NumOFDs: 6}
		})
		fmt.Printf("%-8.0f %9.1f%% %9.1f%% %9.2fs\n", 100*er, 100*p, 100*r, secs)
	}
}

// exp8SenseVaryN reproduces the Table 6 companion: sense assignment
// accuracy and runtime as N grows.
func exp8SenseVaryN(cfg runConfig) {
	fmt.Printf("%-10s %10s %10s %12s\n", "N", "precision", "recall", "assign time")
	for _, n := range []int{cfg.rows / 4, cfg.rows / 2, cfg.rows, cfg.rows * 2, cfg.rows * 4} {
		var p, r float64
		var assign time.Duration
		for s := 1; s <= cfg.seeds; s++ {
			ds := gen.Generate(gen.Config{Rows: n, Seed: int64(s), ErrRate: 0.03, NumOFDs: 6})
			res, err := repair.Clean(ds.Rel, ds.Ont, ds.Sigma, repair.DefaultOptions())
			if err != nil {
				panic(err)
			}
			pr := metrics.SenseAccuracy(ds, res.Assignment)
			p += pr.Precision
			r += pr.Recall
			assign += res.AssignElapsed
		}
		k := float64(cfg.seeds)
		fmt.Printf("%-10d %9.1f%% %9.1f%% %12s\n", n, 100*p/k, 100*r/k, (assign / time.Duration(cfg.seeds)).Round(time.Millisecond))
	}
}

// repairSweep runs Clean over seeds and averages repair accuracy.
func repairSweep(cfg runConfig, opts repair.Options, mk func(seed int64) gen.Config) (data, ont metrics.PR, secs float64, kAvg float64) {
	for s := 1; s <= cfg.seeds; s++ {
		ds := gen.Generate(mk(int64(s)))
		start := time.Now()
		res, err := repair.Clean(ds.Rel, ds.Ont, ds.Sigma, opts)
		if err != nil {
			panic(err)
		}
		secs += time.Since(start).Seconds()
		d := metrics.DataRepairAccuracy(ds, res.Best.DataChanges, res.Instance)
		o := metrics.OntologyRepairAccuracy(ds, res.Best.OntChanges)
		data.Precision += d.Precision
		data.Recall += d.Recall
		ont.Precision += o.Precision
		ont.Recall += o.Recall
		kAvg += float64(res.Best.OntDist)
	}
	k := float64(cfg.seeds)
	data.Precision /= k
	data.Recall /= k
	ont.Precision /= k
	ont.Recall /= k
	return data, ont, secs / k, kAvg / k
}

// exp9VaryBeam reproduces Fig 10a,b: accuracy and runtime vs beam size b
// on the Kiva workload.
func exp9VaryBeam(cfg runConfig) {
	fmt.Printf("%-6s %10s %10s %10s\n", "b", "precision", "recall", "time")
	for _, b := range []int{1, 2, 3, 4, 5} {
		opts := repair.DefaultOptions()
		opts.Beam = b
		data, _, secs, _ := repairSweep(cfg, opts, func(seed int64) gen.Config {
			return gen.Config{Rows: cfg.rows, Seed: seed, Preset: "kiva", ErrRate: 0.12, IncRate: 0.08, NumOFDs: 8, Senses: 6}
		})
		fmt.Printf("%-6d %9.1f%% %9.1f%% %9.2fs\n", b, 100*data.Precision, 100*data.Recall, secs)
	}
}

// exp10VsHoloClean reproduces Fig 10c,d and the Exp-14 comparison:
// OFDClean vs the HoloClean-style baseline across error rates (Kiva).
func exp10VsHoloClean(cfg runConfig) {
	fmt.Printf("%-8s %12s %12s %12s | %12s %12s %12s\n",
		"err%", "OFD prec", "OFD rec", "OFD time", "Holo prec", "Holo rec", "Holo time")
	for _, er := range []float64{0.03, 0.06, 0.09, 0.12, 0.15} {
		var op, or, osec, hp, hr, hsec float64
		for s := 1; s <= cfg.seeds; s++ {
			ds := gen.Generate(gen.Config{Rows: cfg.rows, Seed: int64(s), Preset: "kiva", ErrRate: er, IncRate: 0.04, NumOFDs: 6})
			start := time.Now()
			res, err := repair.Clean(ds.Rel, ds.Ont, ds.Sigma, repair.DefaultOptions())
			if err != nil {
				panic(err)
			}
			osec += time.Since(start).Seconds()
			d := metrics.DataRepairAccuracy(ds, res.Best.DataChanges, res.Instance)
			op += d.Precision
			or += d.Recall

			dict := make([]string, 0, 1024)
			for _, id := range ds.Ont.AllClasses() {
				dict = append(dict, ds.Ont.Synonyms(id)...)
			}
			start = time.Now()
			hres := holoclean.Repair(ds.Rel, ds.Sigma, holoclean.DictionaryFromValues(dict), holoclean.DefaultOptions())
			hsec += time.Since(start).Seconds()
			hch := make([]repair.CellChange, len(hres.Changes))
			for i, c := range hres.Changes {
				hch[i] = repair.CellChange(c)
			}
			h := metrics.DataRepairAccuracy(ds, hch, hres.Instance)
			hp += h.Precision
			hr += h.Recall
		}
		k := float64(cfg.seeds)
		fmt.Printf("%-8.0f %11.1f%% %11.1f%% %11.2fs | %11.1f%% %11.1f%% %11.2fs\n",
			100*er, 100*op/k, 100*or/k, osec/k, 100*hp/k, 100*hr/k, hsec/k)
	}
}

// exp11VaryInc reproduces Fig 9a: accuracy vs ontology incompleteness.
func exp11VaryInc(cfg runConfig) {
	fmt.Printf("%-8s %12s %12s %12s %12s %8s\n", "inc%", "data prec", "data rec", "ont prec", "ont rec", "k")
	for _, inc := range []float64{0.02, 0.04, 0.06, 0.08, 0.10} {
		data, ont, _, k := repairSweep(cfg, repair.DefaultOptions(), func(seed int64) gen.Config {
			return gen.Config{Rows: cfg.rows, Seed: seed, ErrRate: 0.03, IncRate: inc, NumOFDs: 6}
		})
		fmt.Printf("%-8.0f %11.1f%% %11.1f%% %11.1f%% %11.1f%% %8.1f\n",
			100*inc, 100*data.Precision, 100*data.Recall, 100*ont.Precision, 100*ont.Recall, k)
	}
}

// exp12VarySigma reproduces Fig 9b: accuracy vs the number of OFDs.
func exp12VarySigma(cfg runConfig) {
	fmt.Printf("%-8s %12s %12s %10s\n", "|Σ|", "data prec", "data rec", "time")
	for _, ns := range []int{10, 20, 30, 40, 50} {
		data, _, secs, _ := repairSweep(cfg, repair.DefaultOptions(), func(seed int64) gen.Config {
			return gen.Config{Rows: cfg.rows, Seed: seed, ErrRate: 0.03, IncRate: 0.04, NumOFDs: ns}
		})
		fmt.Printf("%-8d %11.1f%% %11.1f%% %9.2fs\n", ns, 100*data.Precision, 100*data.Recall, secs)
	}
}

// exp13CleanVaryN reproduces Table 7: OFDClean runtime scaling in N.
func exp13CleanVaryN(cfg runConfig) {
	fmt.Printf("%-10s %10s %12s %12s %12s\n", "N", "time", "data prec", "data rec", "repairs")
	for _, n := range []int{cfg.rows / 4, cfg.rows / 2, cfg.rows, cfg.rows * 2, cfg.rows * 4} {
		var secs, p, r, d float64
		for s := 1; s <= cfg.seeds; s++ {
			ds := gen.Generate(gen.Config{Rows: n, Seed: int64(s), ErrRate: 0.06, IncRate: 0.04, NumOFDs: 6})
			start := time.Now()
			res, err := repair.Clean(ds.Rel, ds.Ont, ds.Sigma, repair.DefaultOptions())
			if err != nil {
				panic(err)
			}
			secs += time.Since(start).Seconds()
			pr := metrics.DataRepairAccuracy(ds, res.Best.DataChanges, res.Instance)
			p += pr.Precision
			r += pr.Recall
			d += float64(res.Best.DataDist)
		}
		k := float64(cfg.seeds)
		fmt.Printf("%-10d %9.2fs %11.1f%% %11.1f%% %12.0f\n", n, secs/k, 100*p/k, 100*r/k, d/k)
	}
}

// expQualitative reproduces the conference version's "finding interesting
// OFDs" experiment: rank discovered dependencies and show the compact,
// synonym-backed ones (e.g. census OCCUP →syn SAL) along with inheritance
// OFDs the synonym mode misses.
func expQualitative(cfg runConfig) {
	for _, preset := range []string{"clinical", "census"} {
		ds := gen.Generate(gen.Config{Rows: cfg.discRows / 2, Seed: 1, Preset: preset})
		res := discovery.Discover(ds.CleanRel, ds.FullOnt, discovery.DefaultOptions())
		fmt.Printf("%s: top interesting synonym OFDs (of %d discovered):\n", preset, len(res.OFDs))
		for _, r := range discovery.Top(discovery.Rank(ds.CleanRel, ds.FullOnt, res.OFDs), 5) {
			fmt.Printf("  %-36s score=%.3f synonym-share=%.0f%% classes=%d\n",
				r.OFD.Format(ds.CleanRel.Schema()), r.Score, 100*r.SynonymShare, r.ClassCount)
		}
		// Inheritance-only dependencies: hold through is-a families but
		// not as synonym OFDs.
		inhOpts := discovery.DefaultOptions()
		inhOpts.Mode = discovery.ModeInheritance
		inhOpts.Theta = ds.InhTheta
		inh := discovery.Discover(ds.CleanRel, ds.FullOnt, inhOpts)
		v := core.NewVerifier(ds.CleanRel, ds.FullOnt, nil)
		shown := 0
		fmt.Printf("%s: inheritance-only OFDs (hold at θ=%d, fail as synonym):\n", preset, ds.InhTheta)
		for _, d := range inh.OFDs {
			if d.LHS.Len() <= 1 && !v.HoldsSyn(d) {
				fmt.Printf("  %s\n", d.Format(ds.CleanRel.Schema()))
				shown++
				if shown >= 5 {
					break
				}
			}
		}
		fmt.Println()
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func max64(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
