// Command ofdprofile prints column statistics of a CSV relation —
// cardinalities, keys, entropy, top values — and, given an ontology, the
// per-column ontology coverage and sense ambiguity that determine which
// attributes can carry meaningful OFDs.
//
// Usage:
//
//	ofdprofile -data trials.csv [-ontology drugs.json] [-top 5] [-timeout 30s]
//
// SIGINT/SIGTERM or an elapsed -timeout stop profiling cooperatively
// between columns: the columns profiled so far are printed (later columns
// zero-valued) and the process exits with status 3.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/fastofd/fastofd"
	"github.com/fastofd/fastofd/internal/cli"
	"github.com/fastofd/fastofd/internal/profile"
)

func main() {
	var (
		dataPath = flag.String("data", "", "CSV file with a header row (required)")
		ontPath  = flag.String("ontology", "", "ontology JSON file (optional)")
		top      = flag.Int("top", 3, "top values to show per column")
		timeout  = flag.Duration("timeout", 0, "abort after this duration, printing the partial profile (0 = no timeout)")
	)
	flag.Parse()
	if *dataPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := cli.Context(*timeout)
	defer stop()
	rel, err := fastofd.ReadCSVFile(*dataPath)
	if err != nil {
		fail(err)
	}
	var ont *fastofd.Ontology
	if *ontPath != "" {
		if ont, err = fastofd.ReadOntologyFile(*ontPath); err != nil {
			fail(err)
		}
	}
	p, perr := profile.RelationContext(ctx, rel, ont)
	fmt.Printf("%d rows x %d columns\n\n", p.Rows, len(p.Columns))
	fmt.Printf("%-16s %9s %5s %6s %8s %9s %10s  %s\n",
		"column", "distinct", "key", "const", "entropy", "coverage", "ambiguous", "top values")
	for _, c := range p.Columns {
		var tops []string
		for i, tv := range c.TopValues {
			if i >= *top {
				break
			}
			tops = append(tops, fmt.Sprintf("%s(%d)", tv.Value, tv.Count))
		}
		fmt.Printf("%-16s %9d %5v %6v %8.2f %8.0f%% %9.0f%%  %s\n",
			c.Name, c.Distinct, c.IsKey, c.IsConstant, c.Entropy,
			100*c.Coverage, 100*c.MultiSense, strings.Join(tops, " "))
	}
	if perr != nil {
		cli.ExitInterruptedWith("ofdprofile", perr, fastofd.NewStats())
	}
	if ont != nil {
		backed := p.OntologyBacked(0.9)
		names := make([]string, len(backed))
		for i, c := range backed {
			names[i] = rel.Schema().Name(c)
		}
		fmt.Printf("\nontology-backed (≥90%% coverage): %s\n", strings.Join(names, ", "))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ofdprofile:", err)
	os.Exit(1)
}
