// Command ofdclean repairs a CSV relation and a JSON ontology with respect
// to a set of OFDs, writing the repaired instance and ontology.
//
// Usage:
//
//	ofdclean -data trials.csv -ontology drugs.json \
//	         -ofd "CC -> CTRY" -ofd "SYMP,DIAG -> MED" \
//	         [-out repaired.csv] [-ontout repaired.json] \
//	         [-beam 3] [-tau 0.65] [-theta 5] [-pareto] [-timeout 30s]
//
// The tool prints the chosen repair (ontology additions and cell updates)
// and, with -pareto, the whole Pareto frontier of (ontology, data) repair
// combinations.
//
// SIGINT/SIGTERM or an elapsed -timeout stop the repair cooperatively
// between pipeline stages: the partial frontier found so far is printed
// along with a per-stage execution table, no repair is applied or written,
// and the process exits with status 3.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/fastofd/fastofd"
	"github.com/fastofd/fastofd/internal/cli"
)

type ofdList []string

func (l *ofdList) String() string     { return fmt.Sprint(*l) }
func (l *ofdList) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	var ofds ofdList
	var (
		dataPath = flag.String("data", "", "CSV file with a header row (required)")
		ontPath  = flag.String("ontology", "", "ontology JSON file (required)")
		outPath  = flag.String("out", "", "write the repaired relation to this CSV file")
		ontOut   = flag.String("ontout", "", "write the repaired ontology to this JSON file")
		beam     = flag.Int("beam", 0, "beam size b (0 = secretary rule ⌊|Cand|/e⌋)")
		tau      = flag.Float64("tau", 0.65, "τ: max fraction of cells repaired")
		theta    = flag.Float64("theta", 5, "θ: EMD threshold for sense refinement")
		isaTheta = flag.Int("isa-theta", 0, "clean toward INHERITANCE OFDs with this is-a path bound (0 = synonym semantics)")
		workers  = flag.Int("workers", 0, "repair worker-pool width (0 = NumCPU, 1 = sequential; output identical either way)")
		pareto   = flag.Bool("pareto", false, "print the full Pareto frontier")
		suggest  = flag.Bool("suggest-sigma", false, "also print minimal antecedent augmentations repairing the CONSTRAINTS")
		stats    = flag.Bool("stats", false, "print the per-stage execution table")
		timeout  = flag.Duration("timeout", 0, "abort after this duration, printing the partial frontier (0 = no timeout)")
	)
	flag.Var(&ofds, "ofd", "OFD as \"A,B -> C\" (repeatable; required)")
	flag.Parse()
	if *dataPath == "" || *ontPath == "" || len(ofds) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := cli.Context(*timeout)
	defer stop()
	stageStats := fastofd.NewStats()

	rel, err := fastofd.ReadCSVFile(*dataPath)
	if err != nil {
		fail(err)
	}
	ont, err := fastofd.ReadOntologyFile(*ontPath)
	if err != nil {
		fail(err)
	}
	sigma, err := fastofd.ParseOFDs(rel.Schema(), ofds)
	if err != nil {
		fail(err)
	}

	opts := fastofd.DefaultCleanOptions()
	opts.Beam = *beam
	opts.Tau = *tau
	opts.Theta = *theta
	opts.IsATheta = *isaTheta
	opts.Workers = *workers
	opts.Stats = stageStats

	res, err := fastofd.CleanContext(ctx, rel, ont, sigma, opts)
	if err != nil {
		if !cli.Interrupted(err) {
			fail(err)
		}
		fmt.Printf("classes: %d  conflicts: %d  ontology candidates: %d  beam: %d\n",
			res.ClassCount, res.EdgeCount, res.Candidates, res.BeamWidth)
		fmt.Printf("partial Pareto frontier (%d options; no repair applied):\n", len(res.Pareto))
		for _, opt := range res.Pareto {
			fmt.Printf("  (%d, %d)\n", opt.OntDist, opt.DataDist)
		}
		cli.ExitInterruptedWith("ofdclean", err, stageStats)
	}
	if res.Best == nil {
		fmt.Fprintln(os.Stderr, "ofdclean: no repair within τ; raise -tau")
		os.Exit(1)
	}
	fmt.Printf("classes: %d  conflicts: %d  ontology candidates: %d  beam: %d\n",
		res.ClassCount, res.EdgeCount, res.Candidates, res.BeamWidth)
	fmt.Printf("chosen repair: %d ontology additions, %d cell updates\n",
		res.Best.OntDist, res.Best.DataDist)
	for _, ch := range res.Best.OntChanges {
		fmt.Printf("  ontology: add %q to class %d (%s / %s)\n",
			ch.Value, ch.Class, res.Ontology.Sense(ch.Class), res.Ontology.Name(ch.Class))
	}
	for _, ch := range res.Best.DataChanges {
		fmt.Printf("  data: row %d %s: %q -> %q\n",
			ch.Row, rel.Schema().Name(ch.Col), ch.From, ch.To)
	}
	if *pareto {
		fmt.Println("Pareto frontier (ontology additions, cell updates):")
		for _, opt := range res.Pareto {
			fmt.Printf("  (%d, %d)\n", opt.OntDist, opt.DataDist)
		}
	}
	if *suggest {
		fmt.Println("constraint-repair suggestions (antecedent augmentations):")
		srOpts := fastofd.SigmaRepairOptions{IsATheta: *isaTheta}
		for _, sr := range fastofd.RepairSigma(rel, ont, sigma, srOpts) {
			fmt.Printf("  violated: %s\n", sr.Original.Format(rel.Schema()))
			for _, r := range sr.Repairs {
				fmt.Printf("    holds as: %s\n", r.Format(rel.Schema()))
			}
		}
	}
	if *stats {
		fmt.Fprint(os.Stderr, stageStats.Table())
	}
	if *outPath != "" {
		if err := fastofd.WriteCSVFile(*outPath, res.Instance); err != nil {
			fail(err)
		}
	}
	if *ontOut != "" {
		if err := fastofd.WriteOntologyFile(*ontOut, res.Ontology); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ofdclean:", err)
	os.Exit(1)
}
