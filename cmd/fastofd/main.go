// Command fastofd discovers Ontology Functional Dependencies from a CSV
// relation and a JSON ontology.
//
// Usage:
//
//	fastofd -data trials.csv -ontology drugs.json [-support 0.9]
//	        [-maxlevel 6] [-stats] [-no-opt] [-timeout 30s]
//
// The CSV's header row names the attributes; the ontology follows the JSON
// schema written by the ofdclean tool or fastofd.WriteOntologyFile. With
// -support < 1, approximate OFDs holding on at least that fraction of
// tuples are reported. Discovered dependencies print one per line as
// "[X1, X2] -> A".
//
// With -baseline, one of the paper's plain-FD comparators (tane, fun,
// fdmine, dfd, depminer, fastfds, fdep) runs instead of FastOFD; -workers
// parallelizes its evidence-set construction and lattice products with
// byte-identical output.
//
// SIGINT/SIGTERM or an elapsed -timeout stop the run cooperatively: the
// dependencies discovered so far are printed, a per-stage execution table
// goes to stderr, and the process exits with status 3.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/fastofd/fastofd"
	"github.com/fastofd/fastofd/internal/cli"
	"github.com/fastofd/fastofd/internal/fd"
)

func main() {
	var (
		dataPath = flag.String("data", "", "CSV file with a header row (required)")
		ontPath  = flag.String("ontology", "", "ontology JSON file (optional; empty = plain FDs)")
		support  = flag.Float64("support", 1.0, "minimum support κ for approximate OFDs (0 < κ ≤ 1)")
		maxLevel = flag.Int("maxlevel", 0, "cap the lattice depth (0 = unbounded)")
		stats    = flag.Bool("stats", false, "print per-level and per-stage statistics")
		noOpt    = flag.Bool("no-opt", false, "disable the pruning optimizations (Opt-2/3/4)")
		mode     = flag.String("mode", "synonym", "dependency mode: synonym or inheritance")
		theta    = flag.Int("theta", 5, "is-a path bound for inheritance mode")
		workers  = flag.Int("workers", 1, "parallel discovery workers (0 = all CPUs)")
		top      = flag.Int("top", 0, "print only the k most interesting OFDs, with scores")
		baseline = flag.String("baseline", "", "run a plain-FD baseline instead of FastOFD: tane, fun, fdmine, dfd, depminer, fastfds, or fdep")
		timeout  = flag.Duration("timeout", 0, "abort after this duration, printing the partial result (0 = no timeout)")
	)
	flag.Parse()
	if *dataPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := cli.Context(*timeout)
	defer stop()
	stageStats := fastofd.NewStats()

	rel, err := fastofd.ReadCSVFile(*dataPath)
	if err != nil {
		fail(err)
	}
	if *baseline != "" {
		start := time.Now()
		res, err := fd.DiscoverContext(ctx, *baseline, rel, fd.Options{Workers: *workers, Stats: stageStats})
		if err != nil && !cli.Interrupted(err) {
			fail(err)
		}
		for _, d := range res.FDs {
			fmt.Println(d.Format(rel.Schema()))
		}
		fmt.Fprintf(os.Stderr, "%s: %d FDs over %d tuples x %d attributes in %s\n",
			res.Algorithm, len(res.FDs), rel.NumRows(), rel.NumCols(), time.Since(start).Round(1e6))
		if err != nil {
			cli.ExitInterruptedWith("fastofd", err, stageStats)
		}
		if *stats {
			fmt.Fprint(os.Stderr, stageStats.Table())
		}
		return
	}
	ont := fastofd.NewOntology()
	if *ontPath != "" {
		ont, err = fastofd.ReadOntologyFile(*ontPath)
		if err != nil {
			fail(err)
		}
	}

	opts := fastofd.DefaultDiscoveryOptions()
	if *noOpt {
		opts = fastofd.DiscoveryOptions{}
	}
	opts.MaxLevel = *maxLevel
	opts.MinSupport = *support
	opts.Workers = *workers
	opts.Stats = stageStats
	switch *mode {
	case "synonym":
		opts.Mode = fastofd.ModeSynonym
	case "inheritance":
		opts.Mode = fastofd.ModeInheritance
		opts.Theta = *theta
	default:
		fail(fmt.Errorf("unknown mode %q (want synonym or inheritance)", *mode))
	}

	res, derr := fastofd.DiscoverContext(ctx, rel, ont, opts)
	if derr != nil && !cli.Interrupted(derr) {
		fail(derr)
	}
	if *top > 0 {
		for _, r := range fastofd.Top(fastofd.Rank(rel, ont, res.OFDs), *top) {
			fmt.Printf("%-40s score=%.3f synonym-share=%.0f%% classes=%d\n",
				r.OFD.Format(rel.Schema()), r.Score, 100*r.SynonymShare, r.ClassCount)
		}
	} else {
		for _, d := range res.OFDs {
			fmt.Println(d.Format(rel.Schema()))
		}
	}
	fmt.Fprintf(os.Stderr, "%d OFDs over %d tuples x %d attributes in %s (%d candidates checked)\n",
		len(res.OFDs), rel.NumRows(), rel.NumCols(), res.Elapsed.Round(1e6), res.CandidatesChecked)
	if *stats {
		fmt.Fprintf(os.Stderr, "%-6s %8s %10s %10s %12s\n", "level", "nodes", "cands", "OFDs", "time")
		for _, ls := range res.Levels {
			fmt.Fprintf(os.Stderr, "%-6d %8d %10d %10d %12s\n",
				ls.Level, ls.Nodes, ls.Candidates, ls.Discovered, ls.Elapsed.Round(1e6))
		}
	}
	if derr != nil {
		cli.ExitInterruptedWith("fastofd", derr, stageStats)
	}
	if *stats {
		fmt.Fprint(os.Stderr, stageStats.Table())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fastofd:", err)
	os.Exit(1)
}
