// Command ofddetect reports OFD violations on a CSV relation with
// per-class explanations, and quantifies the false positives a plain-FD
// error detector would report.
//
// Usage:
//
//	ofddetect -data trials.csv -ontology drugs.json \
//	          -ofd "CC -> CTRY" -ofd "SYMP,DIAG -> MED" [-sigma sigma.txt]
//	          [-updates stream.csv] [-batch 64] [-shards 8] [-timeout 30s]
//
// With -updates, ofddetect replays a maintenance stream on top of the
// loaded instance through the incremental monitor instead of running a
// one-shot detection. The stream is read incrementally — memory stays
// O(batch) however long it is — and per-batch flush latency percentiles
// are reported at the end; -shards controls the monitor's LHS-key shard
// fan-out (0 derives it from -workers). Each CSV record of the stream is
// either a cell write
//
//	row,attr,value       set cell (row, attr) to value (0-based row ids,
//	                     attr by name)
//
// or an appended tuple
//
//	+,v1,v2,...,vk       append a full row (k = number of attributes)
//
// Lines starting with '#' are comments. Updates are flushed through the
// monitor in batches of -batch cell writes (appends apply immediately);
// the final violation report — identical to re-running detection from
// scratch on the evolved instance — is printed as usual.
//
// With -discover alongside -updates, ofddetect runs the merged pipeline
// instead: the discovery maintainer and the sharded monitor share one
// relation, one partition cache, and one live-index substrate, so -shards
// composes with -discover (the monitor's fan-out applies inside the
// pipeline). -ofd/-sigma are optional here: when given, the monitor
// watches that pinned set; when omitted, it follows the maintained cover
// itself. Every batch that changes the minimal OFD cover prints a
// "cover @N: +... -..." diff line to stdout; per-batch maintain and
// detect latency percentiles are reported separately at the end, and the
// final maintained cover — identical to a fresh discovery over the
// evolved instance — is summarized to stderr.
//
// SIGINT/SIGTERM or an elapsed -timeout stop detection (or the replay,
// between batches) cooperatively: the violations found so far are printed
// along with a per-stage execution table, and the process exits with
// status 3. A batch interrupted mid-flight is rolled back, never
// half-applied.
package main

import (
	"bufio"
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"time"

	"github.com/fastofd/fastofd"
	"github.com/fastofd/fastofd/internal/cli"
	"github.com/fastofd/fastofd/internal/core"
)

type ofdList []string

func (l *ofdList) String() string     { return fmt.Sprint(*l) }
func (l *ofdList) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	var ofds ofdList
	var (
		dataPath  = flag.String("data", "", "CSV file with a header row (required)")
		ontPath   = flag.String("ontology", "", "ontology JSON file (required)")
		sigmaFile = flag.String("sigma", "", "file with one OFD per line (alternative to -ofd)")
		workers   = flag.Int("workers", 1, "partition-cache warm-up workers (0 = all CPUs)")
		updates   = flag.String("updates", "", "CSV update stream to replay through the incremental monitor (records: row,attr,value or +,v1,...,vk)")
		batchSize = flag.Int("batch", 64, "cell updates per monitor batch when replaying -updates")
		shards    = flag.Int("shards", 0, "LHS-key shards for the incremental monitor (0 = derive from -workers)")
		discover  = flag.Bool("discover", false, "with -updates: maintain the minimal OFD cover live over the stream, printing per-batch cover diffs")
		stats     = flag.Bool("stats", false, "print the per-stage execution table")
		timeout   = flag.Duration("timeout", 0, "abort after this duration, printing the partial report (0 = no timeout)")
	)
	flag.Var(&ofds, "ofd", "OFD as \"A,B -> C\" (repeatable)")
	flag.Parse()
	if *dataPath == "" || *ontPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	rel, err := fastofd.ReadCSVFile(*dataPath)
	if err != nil {
		fail(err)
	}
	ont, err := fastofd.ReadOntologyFile(*ontPath)
	if err != nil {
		fail(err)
	}
	sigma, err := fastofd.ParseOFDs(rel.Schema(), ofds)
	if err != nil {
		fail(err)
	}
	if *sigmaFile != "" {
		fromFile, err := core.ReadSetFile(*sigmaFile, rel.Schema())
		if err != nil {
			fail(err)
		}
		sigma = append(sigma, fromFile...)
	}
	if len(sigma) == 0 && !*discover {
		fail(fmt.Errorf("no OFDs given (use -ofd or -sigma)"))
	}
	ctx, stop := cli.Context(*timeout)
	defer stop()
	stageStats := fastofd.NewStats()

	if *discover && *updates == "" {
		fail(fmt.Errorf("-discover requires -updates (it maintains the cover over a replayed stream)"))
	}
	var rep *fastofd.Report
	var derr error
	if *updates != "" && *discover {
		rep, derr = replayPipeline(ctx, rel, ont, sigma, *updates, *batchSize, *shards, *workers, stageStats)
	} else if *updates != "" {
		rep, derr = replayUpdates(ctx, rel, ont, sigma, *updates, *batchSize, *shards, *workers, stageStats)
	} else {
		rep, derr = fastofd.DetectContext(ctx, rel, ont, sigma, *workers, stageStats)
	}
	if derr != nil && !cli.Interrupted(derr) {
		fail(derr)
	}
	for _, v := range rep.Violations {
		fmt.Println(v.Format(rel.Schema(), ont))
	}
	fmt.Fprintf(os.Stderr, "%d violating classes; %d tuples flagged; %d tuples an FD would falsely flag\n",
		len(rep.Violations), rep.TuplesFlagged, rep.FDOnlyFlagged)
	if derr != nil {
		cli.ExitInterruptedWith("ofddetect", derr, stageStats)
	}
	if *stats {
		fmt.Fprint(os.Stderr, stageStats.Table())
	}
	if len(rep.Violations) > 0 {
		os.Exit(1)
	}
}

// replayUpdates streams the update file through the incremental monitor
// batch by batch and materializes the final violation report —
// byte-identical to running detection from scratch on the evolved
// instance. The stream is never loaded whole: records are decoded off a
// buffered reader one at a time and cell writes batch up to batchSize
// before flushing through ApplyBatchContext, so replay memory is O(batch)
// regardless of stream length. '+' records append immediately (appends
// re-verify only the class the tuple joins). Per-batch flush latencies
// are summarized to stderr as percentiles when the stream ends. On
// interrupt the report reflects the stream replayed so far: a cut batch
// rolls back, so no half-applied batch is ever reported.
func replayUpdates(ctx context.Context, rel *fastofd.Relation, ont *fastofd.Ontology, sigma fastofd.Set, path string, batchSize, shards, workers int, stats *fastofd.Stats) (*fastofd.Report, error) {
	if batchSize < 1 {
		batchSize = 1
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := fastofd.NewMonitorSharded(ctx, rel, ont, sigma, shards, workers, stats)
	if err != nil {
		return nil, err
	}

	r := csv.NewReader(bufio.NewReaderSize(f, 1<<16))
	r.FieldsPerRecord = -1 // cell writes and appends have different widths
	r.Comment = '#'
	r.ReuseRecord = false
	schema := rel.Schema()
	batch := make([]fastofd.CellUpdate, 0, batchSize)
	var latencies []time.Duration
	defer func() {
		reportLatencies(os.Stderr, m.NumShards(), latencies)
	}()
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		start := time.Now()
		err := m.ApplyBatchContext(ctx, batch)
		if err == nil {
			latencies = append(latencies, time.Since(start))
		}
		batch = batch[:0]
		return err
	}
	line := 0
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return m.Report(), err
		}
		line++
		if len(rec) > 0 && rec[0] == "+" {
			// Appends see the batched writes before them in stream order.
			if err := flush(); err != nil {
				return m.Report(), err
			}
			if _, err := m.AppendRow(rec[1:]); err != nil {
				return m.Report(), fmt.Errorf("updates record %d: %w", line, err)
			}
			continue
		}
		if len(rec) != 3 {
			return m.Report(), fmt.Errorf("updates record %d: want row,attr,value or +,v1,...,vk; got %d fields", line, len(rec))
		}
		row, err := strconv.Atoi(rec[0])
		if err != nil {
			return m.Report(), fmt.Errorf("updates record %d: bad row id %q", line, rec[0])
		}
		col, ok := schema.Index(rec[1])
		if !ok {
			return m.Report(), fmt.Errorf("updates record %d: unknown attribute %q", line, rec[1])
		}
		batch = append(batch, fastofd.CellUpdate{Row: row, Col: col, Value: rec[2]})
		if len(batch) == batchSize {
			if err := flush(); err != nil {
				return m.Report(), err
			}
		}
	}
	if err := flush(); err != nil {
		return m.Report(), err
	}
	return m.Report(), nil
}

// replayPipeline streams the update file through the merged
// discover→detect pipeline: the maintainer and the sharded monitor share
// one relation, one partition cache, and one live-index substrate, so
// each batch is validated, deduplicated, and applied exactly once and
// both engines absorb it from the same index — no second copy of the
// instance, and -shards fans the detect side out inside the pipeline.
// The monitored set is the user's sigma (pinned); the cover is
// discovered at startup and maintained live, printing a diff line per
// batch that changes it. Each batch's maintain and detect phases are
// timed separately by the pipeline (BatchResult.MaintainNanos /
// DetectNanos) and summarized as percentiles when the stream ends. On
// interrupt the report reflects the stream replayed so far: a cut batch
// rolls back in both engines, so no half-applied batch is ever reported.
func replayPipeline(ctx context.Context, rel *fastofd.Relation, ont *fastofd.Ontology, sigma fastofd.Set, path string, batchSize, shards, workers int, stats *fastofd.Stats) (*fastofd.Report, error) {
	if batchSize < 1 {
		batchSize = 1
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := fastofd.NewPipeline(ctx, rel, ont, fastofd.PipelineOptions{
		Sigma:   sigma,
		Shards:  shards,
		Workers: workers,
		Stats:   stats,
	})
	if err != nil {
		return nil, err
	}
	monitored := len(sigma)
	if monitored == 0 {
		monitored = len(p.Cover()) // no pinned sigma: the monitor follows the cover
	}
	fmt.Fprintf(os.Stderr, "pipeline: maintaining a cover of %d OFDs and monitoring %d on one shared index (%d shards)\n",
		len(p.Cover()), monitored, p.Monitor().NumShards())

	r := csv.NewReader(bufio.NewReaderSize(f, 1<<16))
	r.FieldsPerRecord = -1 // cell writes and appends have different widths
	r.Comment = '#'
	r.ReuseRecord = false
	schema := rel.Schema()
	batch := make([]fastofd.CellUpdate, 0, batchSize)
	var maintainLat, detectLat []time.Duration
	defer func() {
		if len(detectLat) > 0 {
			fmt.Fprintf(os.Stderr, "replayed %d batches through the pipeline over %d shards\n",
				len(detectLat), p.Monitor().NumShards())
			fmt.Fprintf(os.Stderr, "detect latency %s\n", fmtLatencies(detectLat))
		}
		reportMaintain(os.Stderr, p.Maintainer(), maintainLat)
	}()
	record := func(res fastofd.PipelineBatchResult) {
		maintainLat = append(maintainLat, time.Duration(res.MaintainNanos))
		detectLat = append(detectLat, time.Duration(res.DetectNanos))
		printDiff(os.Stdout, schema, res.Diff)
	}
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		res, err := p.ApplyBatch(ctx, batch)
		if err == nil {
			record(res)
		}
		batch = batch[:0]
		return err
	}
	line := 0
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return p.Report(), err
		}
		line++
		if len(rec) > 0 && rec[0] == "+" {
			// Appends see the batched writes before them in stream order.
			if err := flush(); err != nil {
				return p.Report(), err
			}
			res, err := p.AppendRows([][]string{rec[1:]})
			if err != nil {
				return p.Report(), fmt.Errorf("updates record %d: %w", line, err)
			}
			record(res)
			continue
		}
		if len(rec) != 3 {
			return p.Report(), fmt.Errorf("updates record %d: want row,attr,value or +,v1,...,vk; got %d fields", line, len(rec))
		}
		row, err := strconv.Atoi(rec[0])
		if err != nil {
			return p.Report(), fmt.Errorf("updates record %d: bad row id %q", line, rec[0])
		}
		col, ok := schema.Index(rec[1])
		if !ok {
			return p.Report(), fmt.Errorf("updates record %d: unknown attribute %q", line, rec[1])
		}
		batch = append(batch, fastofd.CellUpdate{Row: row, Col: col, Value: rec[2]})
		if len(batch) == batchSize {
			if err := flush(); err != nil {
				return p.Report(), err
			}
		}
	}
	if err := flush(); err != nil {
		return p.Report(), err
	}
	return p.Report(), nil
}

// printDiff writes one batch's cover changes as a single diff line
// (silent when the cover is unchanged).
func printDiff(w io.Writer, schema *fastofd.Schema, diff fastofd.CoverDiff) {
	if diff.Empty() {
		return
	}
	fmt.Fprintf(w, "cover @%d:", diff.Epoch)
	for _, d := range diff.Added {
		fmt.Fprintf(w, " +[%s]", d.Format(schema))
	}
	for _, d := range diff.Removed {
		fmt.Fprintf(w, " -[%s]", d.Format(schema))
	}
	fmt.Fprintln(w)
}

// reportMaintain prints the final maintained cover and its per-batch
// latency percentiles.
func reportMaintain(w io.Writer, mtn *fastofd.Maintainer, latencies []time.Duration) {
	cover := mtn.Cover()
	fmt.Fprintf(w, "maintained cover: %d OFDs after %d batches (%d full candidate scans)\n",
		len(cover), mtn.Epoch(), mtn.Scans())
	if len(latencies) == 0 {
		return
	}
	fmt.Fprintf(w, "maintain latency %s\n", fmtLatencies(latencies))
}

// reportLatencies prints p50/p95/p99/max over the recorded per-batch
// flush latencies, the live-replay health numbers an operator watches.
func reportLatencies(w io.Writer, shards int, latencies []time.Duration) {
	if len(latencies) == 0 {
		return
	}
	fmt.Fprintf(w, "replayed %d batches over %d shards; batch latency %s\n",
		len(latencies), shards, fmtLatencies(latencies))
}

// fmtLatencies renders a latency series as p50/p95/p99/max percentiles.
func fmtLatencies(latencies []time.Duration) string {
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pct := func(p float64) time.Duration {
		k := int(p * float64(len(sorted)-1))
		return sorted[k]
	}
	return fmt.Sprintf("p50=%s p95=%s p99=%s max=%s",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), sorted[len(sorted)-1].Round(time.Microsecond))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ofddetect:", err)
	os.Exit(1)
}
