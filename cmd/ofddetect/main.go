// Command ofddetect reports OFD violations on a CSV relation with
// per-class explanations, and quantifies the false positives a plain-FD
// error detector would report.
//
// Usage:
//
//	ofddetect -data trials.csv -ontology drugs.json \
//	          -ofd "CC -> CTRY" -ofd "SYMP,DIAG -> MED" [-sigma sigma.txt]
//	          [-timeout 30s]
//
// SIGINT/SIGTERM or an elapsed -timeout stop detection cooperatively
// between dependencies: the violations found so far are printed along with
// a per-stage execution table, and the process exits with status 3.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/fastofd/fastofd"
	"github.com/fastofd/fastofd/internal/cli"
	"github.com/fastofd/fastofd/internal/core"
)

type ofdList []string

func (l *ofdList) String() string     { return fmt.Sprint(*l) }
func (l *ofdList) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	var ofds ofdList
	var (
		dataPath  = flag.String("data", "", "CSV file with a header row (required)")
		ontPath   = flag.String("ontology", "", "ontology JSON file (required)")
		sigmaFile = flag.String("sigma", "", "file with one OFD per line (alternative to -ofd)")
		workers   = flag.Int("workers", 1, "partition-cache warm-up workers (0 = all CPUs)")
		stats     = flag.Bool("stats", false, "print the per-stage execution table")
		timeout   = flag.Duration("timeout", 0, "abort after this duration, printing the partial report (0 = no timeout)")
	)
	flag.Var(&ofds, "ofd", "OFD as \"A,B -> C\" (repeatable)")
	flag.Parse()
	if *dataPath == "" || *ontPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	rel, err := fastofd.ReadCSVFile(*dataPath)
	if err != nil {
		fail(err)
	}
	ont, err := fastofd.ReadOntologyFile(*ontPath)
	if err != nil {
		fail(err)
	}
	sigma, err := fastofd.ParseOFDs(rel.Schema(), ofds)
	if err != nil {
		fail(err)
	}
	if *sigmaFile != "" {
		fromFile, err := core.ReadSetFile(*sigmaFile, rel.Schema())
		if err != nil {
			fail(err)
		}
		sigma = append(sigma, fromFile...)
	}
	if len(sigma) == 0 {
		fail(fmt.Errorf("no OFDs given (use -ofd or -sigma)"))
	}
	ctx, stop := cli.Context(*timeout)
	defer stop()
	stageStats := fastofd.NewStats()

	rep, derr := fastofd.DetectContext(ctx, rel, ont, sigma, *workers, stageStats)
	if derr != nil && !cli.Interrupted(derr) {
		fail(derr)
	}
	for _, v := range rep.Violations {
		fmt.Println(v.Format(rel.Schema(), ont))
	}
	fmt.Fprintf(os.Stderr, "%d violating classes; %d tuples flagged; %d tuples an FD would falsely flag\n",
		len(rep.Violations), rep.TuplesFlagged, rep.FDOnlyFlagged)
	if derr != nil {
		cli.ExitInterruptedWith("ofddetect", derr, stageStats)
	}
	if *stats {
		fmt.Fprint(os.Stderr, stageStats.Table())
	}
	if len(rep.Violations) > 0 {
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ofddetect:", err)
	os.Exit(1)
}
