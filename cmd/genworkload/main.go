// Command genworkload emits the synthetic evaluation workloads as files so
// the fastofd / ofdclean / ofddetect tools can be driven end to end:
//
//	genworkload -out ./work -rows 5000 -preset clinical -err 0.03 -inc 0.04
//
// writes into ./work:
//
//	data.csv       the (dirty) instance I
//	clean.csv      the pre-error ground truth
//	ontology.json  the (possibly incomplete) ontology S
//	full-ontology.json  the complete ground-truth ontology
//	sigma.txt      the planted OFDs, one per line ("A,B -> C")
//	errors.csv     injected error cells (row, attribute, original, injected)
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"github.com/fastofd/fastofd"
	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/gen"
)

func main() {
	var (
		out    = flag.String("out", ".", "output directory (created if missing)")
		rows   = flag.Int("rows", 5000, "number of tuples")
		seed   = flag.Int64("seed", 1, "random seed")
		preset = flag.String("preset", "clinical", "schema preset: clinical or kiva")
		senses = flag.Int("senses", 4, "number of senses |λ|")
		errPct = flag.Float64("err", 0.0, "error rate (fraction of consequent cells)")
		incPct = flag.Float64("inc", 0.0, "ontology incompleteness rate")
		nOFDs  = flag.Int("ofds", 6, "number of planted OFDs |Σ|")
	)
	flag.Parse()

	ds := gen.Generate(gen.Config{
		Rows:    *rows,
		Seed:    *seed,
		Preset:  *preset,
		Senses:  *senses,
		ErrRate: *errPct,
		IncRate: *incPct,
		NumOFDs: *nOFDs,
	})
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	write := func(name string, fn func(path string) error) {
		path := filepath.Join(*out, name)
		if err := fn(path); err != nil {
			fail(fmt.Errorf("writing %s: %w", name, err))
		}
		fmt.Println("wrote", path)
	}
	write("data.csv", func(p string) error { return fastofd.WriteCSVFile(p, ds.Rel) })
	write("clean.csv", func(p string) error { return fastofd.WriteCSVFile(p, ds.CleanRel) })
	write("ontology.json", func(p string) error { return fastofd.WriteOntologyFile(p, ds.Ont) })
	write("full-ontology.json", func(p string) error { return fastofd.WriteOntologyFile(p, ds.FullOnt) })
	write("sigma.txt", func(p string) error {
		return core.WriteSetFile(p, ds.Rel.Schema(), ds.Sigma)
	})
	write("inh-sigma.txt", func(p string) error {
		return core.WriteSetFile(p, ds.Rel.Schema(), ds.InhSigma)
	})
	write("errors.csv", func(p string) error {
		f, err := os.Create(p)
		if err != nil {
			return err
		}
		w := csv.NewWriter(f)
		_ = w.Write([]string{"row", "attribute", "original", "injected"})
		for _, e := range ds.Errors {
			_ = w.Write([]string{
				strconv.Itoa(e.Row), ds.Rel.Schema().Name(e.Col), e.Original, e.Injected,
			})
		}
		w.Flush()
		if err := w.Error(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	})
	fmt.Printf("%d tuples, %d errors, %d ontology removals, |Σ|=%d\n",
		ds.Rel.NumRows(), len(ds.Errors), len(ds.Removals), len(ds.Sigma))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "genworkload:", err)
	os.Exit(1)
}
