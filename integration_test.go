package fastofd_test

import (
	"path/filepath"
	"reflect"
	"testing"

	"github.com/fastofd/fastofd"
	"github.com/fastofd/fastofd/internal/gen"
	"github.com/fastofd/fastofd/internal/metrics"
)

// TestFilePipeline drives the full workflow through the file formats the
// CLIs use: generate → write → read back → discover → detect → clean.
func TestFilePipeline(t *testing.T) {
	dir := t.TempDir()
	ds := gen.Generate(gen.Config{Rows: 400, Seed: 77, ErrRate: 0.05, IncRate: 0.05, NumOFDs: 6})

	dataPath := filepath.Join(dir, "data.csv")
	ontPath := filepath.Join(dir, "ontology.json")
	if err := fastofd.WriteCSVFile(dataPath, ds.Rel); err != nil {
		t.Fatal(err)
	}
	if err := fastofd.WriteOntologyFile(ontPath, ds.Ont); err != nil {
		t.Fatal(err)
	}

	rel, err := fastofd.ReadCSVFile(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	ont, err := fastofd.ReadOntologyFile(ontPath)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := rel.DiffCells(ds.Rel); d != 0 {
		t.Fatal("relation changed through file round trip")
	}
	if !reflect.DeepEqual(rel.Schema().Names(), ds.Rel.Schema().Names()) {
		t.Fatal("schema changed through file round trip")
	}

	// Discovery on the files equals discovery on the originals.
	a := fastofd.Discover(rel, ont, fastofd.DefaultDiscoveryOptions()).OFDs
	b := fastofd.Discover(ds.Rel, ds.Ont, fastofd.DefaultDiscoveryOptions()).OFDs
	if !reflect.DeepEqual(a, b) {
		t.Fatal("discovery differs after file round trip")
	}

	// Detection flags the injected errors' classes.
	rep := fastofd.Detect(rel, ont, ds.Sigma)
	if len(rep.Violations) == 0 {
		t.Fatal("no violations detected on dirty data")
	}

	// Cleaning restores satisfaction and lands reasonable accuracy.
	res, err := fastofd.Clean(rel, ont, ds.Sigma, fastofd.DefaultCleanOptions())
	if err != nil {
		t.Fatal(err)
	}
	v := fastofd.NewVerifier(res.Instance, res.Ontology)
	if !v.SatisfiesAll(ds.Sigma) {
		t.Fatal("repair incomplete")
	}
	pr := metrics.DataRepairAccuracy(ds, res.Best.DataChanges, res.Instance)
	if pr.Recall < 0.5 {
		t.Errorf("suspiciously low repair recall %.2f", pr.Recall)
	}
	// The repaired output can itself be written and re-read.
	outPath := filepath.Join(dir, "repaired.csv")
	if err := fastofd.WriteCSVFile(outPath, res.Instance); err != nil {
		t.Fatal(err)
	}
	ontOutPath := filepath.Join(dir, "repaired-ontology.json")
	if err := fastofd.WriteOntologyFile(ontOutPath, res.Ontology); err != nil {
		t.Fatal(err)
	}
	back, err := fastofd.ReadOntologyFile(ontOutPath)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumClasses() != res.Ontology.NumClasses() {
		t.Fatal("repaired ontology lost classes in serialization")
	}
}

// TestFacadeRepairSigma exercises constraint repair through the facade.
func TestFacadeRepairSigma(t *testing.T) {
	schema := fastofd.MustSchema("CTRY", "SYMP", "DIAG", "MED")
	rel, _ := fastofd.FromRows(schema, [][]string{
		{"USA", "headache", "hypertension", "cartia"},
		{"USA", "headache", "hypertension", "ASA"},
		{"America", "headache", "hypertension", "tiazac"},
	})
	ont := fastofd.NewOntology()
	ont.MustAddClass("diltiazem", "FDA", fastofd.NoClass, "cartia", "tiazac")
	ont.MustAddClass("aspirin", "MoH", fastofd.NoClass, "cartia", "ASA")
	sigma := fastofd.Set{fastofd.MustParseOFD(schema, "SYMP,DIAG -> MED")}
	out := fastofd.RepairSigma(rel, ont, sigma, fastofd.SigmaRepairOptions{})
	if len(out) != 1 || len(out[0].Repairs) == 0 {
		t.Fatalf("RepairSigma = %+v", out)
	}
	v := fastofd.NewVerifier(rel, ont)
	for _, r := range out[0].Repairs {
		if !v.HoldsSyn(r) {
			t.Errorf("suggested repair %v does not hold", r)
		}
	}
}

// TestFacadeRankTop exercises ranking through the facade.
func TestFacadeRankTop(t *testing.T) {
	ds := gen.Clinical(300, 7)
	res := fastofd.Discover(ds.CleanRel, ds.FullOnt, fastofd.DefaultDiscoveryOptions())
	ranked := fastofd.Rank(ds.CleanRel, ds.FullOnt, res.OFDs)
	top := fastofd.Top(ranked, 3)
	if len(top) != 3 {
		t.Fatalf("Top(3) = %d entries", len(top))
	}
	if top[0].Score < top[2].Score {
		t.Fatal("Top not sorted")
	}
}
