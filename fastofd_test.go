package fastofd

import (
	"bytes"
	"testing"
)

// TestEndToEnd exercises the public facade on the paper's running example:
// build, serialize/parse, discover, verify, clean.
func TestEndToEnd(t *testing.T) {
	schema := MustSchema("CC", "CTRY", "SYMP", "DIAG", "MED")
	rel, err := FromRows(schema, [][]string{
		{"US", "USA", "headache", "hypertension", "cartia"},
		{"US", "USA", "headache", "hypertension", "ASA"},
		{"US", "America", "headache", "hypertension", "tiazac"},
		{"US", "United States", "headache", "hypertension", "adizem"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ont := NewOntology()
	ont.MustAddClass("United States of America", "GEO", NoClass, "US", "USA", "America", "United States")
	ont.MustAddClass("diltiazem", "FDA", NoClass, "cartia", "tiazac")
	ont.MustAddClass("aspirin", "MoH", NoClass, "cartia", "ASA")

	// CSV round trip through the facade.
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rel); err != nil {
		t.Fatal(err)
	}
	rel2, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := rel.DiffCells(rel2); d != 0 {
		t.Fatal("CSV round trip lost data")
	}

	// Ontology round trip.
	buf.Reset()
	if err := WriteOntology(&buf, ont); err != nil {
		t.Fatal(err)
	}
	ont2, err := ReadOntology(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ont2.NumClasses() != ont.NumClasses() {
		t.Fatal("ontology round trip lost classes")
	}

	// Discovery: CC ->syn CTRY must be implied by the result (here the
	// even stronger ∅ -> CTRY holds, since every CTRY value shares the
	// "United States of America" interpretation).
	res := Discover(rel, ont, DefaultDiscoveryOptions())
	target := MustParseOFD(schema, "CC -> CTRY")
	implied := false
	for _, d := range res.OFDs {
		if d.RHS == target.RHS && d.LHS.SubsetOf(target.LHS) {
			implied = true
		}
	}
	if !implied {
		t.Fatalf("CC -> CTRY not implied by discovery: %v", res.OFDs.Format(schema))
	}

	// Cleaning against the Table 3 Σ.
	sigma, err := ParseOFDs(schema, []string{"CC -> CTRY", "SYMP,DIAG -> MED"})
	if err != nil {
		t.Fatal(err)
	}
	cres, err := Clean(rel, ont, sigma, DefaultCleanOptions())
	if err != nil {
		t.Fatal(err)
	}
	if cres.Best == nil {
		t.Fatal("no repair")
	}
	v := NewVerifier(cres.Instance, cres.Ontology)
	if !v.SatisfiesAll(sigma) {
		t.Fatal("repaired instance violates Σ")
	}
}

func TestFacadeInference(t *testing.T) {
	schema := MustSchema("A", "B", "C")
	sigma := Set{
		MustParseOFD(schema, "A -> B"),
		MustParseOFD(schema, "B -> C"),
	}
	if !Implies(sigma, MustParseOFD(schema, "A -> B")) {
		t.Fatal("stated dependency not implied")
	}
	if Implies(sigma, MustParseOFD(schema, "A -> C")) {
		t.Fatal("transitivity must not hold for OFDs")
	}
	cl := Closure(sigma, schema.MustSet("A"))
	if cl != schema.MustSet("A", "B") {
		t.Fatalf("closure = %v", cl)
	}
	cover := MinimalCover(append(sigma, MustParseOFD(schema, "A, B -> B")))
	if len(cover) != 2 {
		t.Fatalf("cover = %v", cover)
	}
}
