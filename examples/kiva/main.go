// Kiva: the paper's second workload — loans data where country codes and
// country names drift across standards (ISO vs UN vs legacy spellings).
// Compares OFDClean against the HoloClean-style statistical baseline: both
// fix genuine errors, but only OFDClean leaves synonymous values alone.
package main

import (
	"fmt"
	"log"

	"github.com/fastofd/fastofd"
	"github.com/fastofd/fastofd/internal/gen"
	"github.com/fastofd/fastofd/internal/holoclean"
	"github.com/fastofd/fastofd/internal/metrics"
	"github.com/fastofd/fastofd/internal/repair"
)

func main() {
	ds := gen.Generate(gen.Config{
		Rows:    8000,
		Seed:    7,
		Preset:  "kiva",
		Senses:  4,
		ErrRate: 0.06,
		IncRate: 0.04,
		NumOFDs: 6,
	})
	fmt.Printf("kiva workload: %d tuples, %d injected errors, |Σ|=%d\n",
		ds.Rel.NumRows(), len(ds.Errors), len(ds.Sigma))
	for _, d := range ds.Sigma[:3] {
		fmt.Println("  ", d.Format(ds.Rel.Schema()))
	}

	// --- OFDClean.
	cres, err := fastofd.Clean(ds.Rel, ds.Ont, ds.Sigma, fastofd.DefaultCleanOptions())
	if err != nil {
		log.Fatal(err)
	}
	dpr := metrics.DataRepairAccuracy(ds, cres.Best.DataChanges, cres.Instance)
	fmt.Printf("\nOFDClean:  %4d changes   P=%.1f%% R=%.1f%%\n",
		len(cres.Best.DataChanges), 100*dpr.Precision, 100*dpr.Recall)

	// --- HoloClean-style baseline: same dependencies read as syntactic
	// denial constraints, the ontology flattened to a sense-less
	// dictionary, plus frequency statistics.
	var dict []string
	for _, id := range ds.Ont.AllClasses() {
		dict = append(dict, ds.Ont.Synonyms(id)...)
	}
	hres := holoclean.Repair(ds.Rel, ds.Sigma, holoclean.DictionaryFromValues(dict), holoclean.DefaultOptions())
	hch := make([]repair.CellChange, len(hres.Changes))
	for i, c := range hres.Changes {
		hch[i] = repair.CellChange(c)
	}
	hpr := metrics.DataRepairAccuracy(ds, hch, hres.Instance)
	fmt.Printf("HoloClean: %4d changes   P=%.1f%% R=%.1f%%   (%d cells flagged noisy)\n",
		len(hres.Changes), 100*hpr.Precision, 100*hpr.Recall, hres.NoisyCells)

	fmt.Printf("\nprecision gap: %+.1f points, recall gap: %+.1f points\n",
		100*(dpr.Precision-hpr.Precision), 100*(dpr.Recall-hpr.Recall))
	fmt.Println("\nHoloClean rewrites synonym variants (false positives) because it")
	fmt.Println("cannot tell 'USA' from an error; OFDClean's senses keep them clean.")
}
