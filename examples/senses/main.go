// Senses: a walk-through of sense assignment on the paper's Section 5
// example — two OFDs sharing a consequent, seven candidate senses, an
// equivalence class whose interpretation is refined when its overlap with
// a neighbouring class reveals a cheaper sense.
package main

import (
	"fmt"
	"log"

	"github.com/fastofd/fastofd"
)

func main() {
	// Figure "ecg"(a): instance over A, B, C with φ1: A →syn C and
	// φ2: B →syn C. The classes x2 = Π_{A=a1} and x3 = Π_{B=b2} overlap in
	// tuples whose C-values mix senses.
	schema := fastofd.MustSchema("A", "B", "C")
	rel, err := fastofd.FromRows(schema, [][]string{
		{"a0", "b2", "c1"}, // t1
		{"a0", "b2", "c3"}, // t2
		{"a1", "b2", "c2"}, // t3
		{"a1", "b2", "c2"}, // t4
		{"a1", "b2", "c4"}, // t5
		{"a1", "b2", "c2"}, // t6
		{"a1", "b3", "c2"}, // t7
		{"a1", "b3", "c6"}, // t8
	})
	if err != nil {
		log.Fatal(err)
	}

	// Figure "ecg"(b): senses and their synonym values. λ1 covers
	// {c1,c2,c3}, λ2 covers {c2,c4}, λ4 covers {c3,c6}, …
	ont := fastofd.NewOntology()
	l1 := ont.MustAddClass("c2", "λ1", fastofd.NoClass, "c1", "c3")
	l2 := ont.MustAddClass("c2", "λ2", fastofd.NoClass, "c4")
	ont.MustAddClass("c5", "λ3", fastofd.NoClass, "c6")
	ont.MustAddClass("c3", "λ4", fastofd.NoClass, "c6")
	ont.MustAddClass("c1", "λ5", fastofd.NoClass, "c7")
	l6 := ont.MustAddClass("c2", "λ6", fastofd.NoClass, "c6")
	ont.MustAddClass("c4", "λ7", fastofd.NoClass, "c8")

	// sset index, as in Figure "ecg"(c).
	for _, v := range []string{"c1", "c2", "c3", "c4", "c6"} {
		fmt.Printf("sset(%s) = %v\n", v, ont.Names(v))
	}

	sigma, err := fastofd.ParseOFDs(schema, []string{"A -> C", "B -> C"})
	if err != nil {
		log.Fatal(err)
	}
	res, err := fastofd.Clean(rel, ont, sigma, fastofd.DefaultCleanOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d equivalence classes, %d dependency-graph edges\n", res.ClassCount, res.EdgeCount)
	fmt.Println("final sense assignment (OFD#, class representative tuple -> sense):")
	for key, cls := range res.Assignment {
		name := "∅ (no interpretation)"
		if cls != fastofd.NoClass {
			name = fmt.Sprintf("%s (canonical %q)", res.Ontology.Sense(cls), res.Ontology.Name(cls))
		}
		fmt.Printf("  φ%d class@t%d -> %s\n", key.OFD+1, key.Rep+1, name)
	}
	_ = l1
	_ = l2
	_ = l6

	fmt.Printf("\nrepair: %d ontology additions, %d cell updates\n",
		res.Best.OntDist, res.Best.DataDist)
	for _, ch := range res.Best.DataChanges {
		fmt.Printf("  t%d[C]: %q -> %q\n", ch.Row+1, ch.From, ch.To)
	}
	for _, ch := range res.Best.OntChanges {
		fmt.Printf("  ontology: add %q under %s\n", ch.Value, res.Ontology.Sense(ch.Class))
	}
	v := fastofd.NewVerifier(res.Instance, res.Ontology)
	fmt.Printf("repaired instance satisfies Σ: %v\n", v.SatisfiesAll(sigma))
}
