// Monitor: incremental OFD verification under streaming updates — the
// paper's motivating scenario where data evolves (new prescriptions,
// monthly drug approvals) and consistency must be tracked without
// re-verifying the whole instance.
package main

import (
	"fmt"
	"log"

	"github.com/fastofd/fastofd"
)

func main() {
	schema := fastofd.MustSchema("CC", "CTRY", "SYMP", "DIAG", "MED")
	rel, err := fastofd.FromRows(schema, [][]string{
		{"US", "USA", "headache", "hypertension", "cartia"},
		{"US", "USA", "headache", "hypertension", "cartia"},
		{"US", "America", "headache", "hypertension", "tiazac"},
		{"IN", "India", "nausea", "migrane", "tylenol"},
		{"IN", "Bharat", "nausea", "migrane", "acetaminophen"},
	})
	if err != nil {
		log.Fatal(err)
	}
	ont := fastofd.NewOntology()
	ont.MustAddClass("United States of America", "GEO", fastofd.NoClass, "US", "USA", "America")
	ont.MustAddClass("India", "GEO", fastofd.NoClass, "IN", "Bharat")
	ont.MustAddClass("diltiazem", "FDA", fastofd.NoClass, "cartia", "tiazac")
	ont.MustAddClass("analgesic", "FDA", fastofd.NoClass, "tylenol", "acetaminophen")

	sigma, err := fastofd.ParseOFDs(schema, []string{"CC -> CTRY", "SYMP,DIAG -> MED"})
	if err != nil {
		log.Fatal(err)
	}
	m, err := fastofd.NewMonitor(rel, ont, sigma)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initially satisfied: %v\n", m.Satisfied())

	// A stream of updates: prescriptions change, some introduce
	// inconsistencies, later updates fix them.
	med := schema.MustIndex("MED")
	ctry := schema.MustIndex("CTRY")
	updates := []struct {
		row, col int
		val      string
		note     string
	}{
		{0, med, "tiazac", "same drug family — stays consistent"},
		{1, med, "morphine", "unknown drug — breaks [SYMP,DIAG]->MED"},
		{4, ctry, "Hindustan", "unlisted country name — breaks CC->CTRY"},
		{1, med, "cartia", "prescription corrected"},
		{4, ctry, "India", "country name normalized"},
	}
	for _, u := range updates {
		if _, err := m.Update(u.row, u.col, u.val); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t%d[%s] := %-12q  %-45s violations: %d\n",
			u.row+1, schema.Name(u.col), u.val, u.note, m.ViolationCount())
	}

	// New tuples join their equivalence classes through the LHS-key index —
	// no partition rebuild.
	if _, err := m.AppendRow([]string{"US", "America", "headache", "hypertension", "cartia"}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("appended a consistent prescription     violations: %d\n", m.ViolationCount())

	// A monthly batch: dirty classes are deduped and re-verified once, in
	// parallel, with a deterministic merge.
	batch := []fastofd.CellUpdate{
		{Row: 0, Col: med, Value: "cartia"},  // same drug family again
		{Row: 2, Col: med, Value: "cartia"},  // normalize the synonym
		{Row: 3, Col: med, Value: "tylenol"}, // no-op: already tylenol
	}
	if err := m.ApplyBatch(batch); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("applied a 3-update batch               violations: %d\n", m.ViolationCount())
	fmt.Printf("finally satisfied: %v\n", m.Satisfied())
}
