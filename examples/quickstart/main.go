// Quickstart: the paper's running example end to end — build the clinical
// sample of Table 1 and the medication/geography ontologies of Figure 1,
// discover the OFDs that hold, then inject the Table 3 updates and let
// OFDClean propose minimal (ontology, data) repairs.
package main

import (
	"fmt"
	"log"

	"github.com/fastofd/fastofd"
)

func main() {
	schema := fastofd.MustSchema("CC", "CTRY", "SYMP", "TEST", "DIAG", "MED")
	rel, err := fastofd.FromRows(schema, [][]string{
		{"US", "USA", "joint pain", "CT", "osteoarthritis", "ibuprofen"},
		{"IN", "India", "joint pain", "CT", "osteoarthritis", "NSAID"},
		{"CA", "Canada", "joint pain", "CT", "osteoarthritis", "naproxen"},
		{"IN", "Bharat", "nausea", "EEG", "migrane", "analgesic"},
		{"US", "America", "nausea", "EEG", "migrane", "tylenol"},
		{"US", "USA", "nausea", "EEG", "migrane", "acetaminophen"},
		{"IN", "India", "chest pain", "X-ray", "hypertension", "morphine"},
		{"US", "USA", "headache", "CT", "hypertension", "cartia"},
		{"US", "USA", "headache", "MRI", "hypertension", "tiazac"},
		{"US", "America", "headache", "MRI", "hypertension", "tiazac"},
		{"US", "USA", "headache", "CT", "hypertension", "tiazac"},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The ontologies of Figure 1: a geographic ontology (one sense) and a
	// medication ontology with two interpretations — the US FDA and
	// Israel's Ministry of Health (MoH).
	ont := fastofd.NewOntology()
	ont.MustAddClass("United States of America", "GEO", fastofd.NoClass, "US", "USA", "America", "United States")
	ont.MustAddClass("India", "GEO", fastofd.NoClass, "IN", "Bharat")
	ont.MustAddClass("Canada", "GEO", fastofd.NoClass, "CA")
	ont.MustAddClass("NSAID", "FDA", fastofd.NoClass, "ibuprofen", "naproxen")
	ont.MustAddClass("analgesic", "FDA", fastofd.NoClass, "tylenol", "acetaminophen")
	ont.MustAddClass("diltiazem hydrochloride", "FDA", fastofd.NoClass, "cartia", "tiazac")
	ont.MustAddClass("aspirin", "MoH", fastofd.NoClass, "cartia", "ASA")

	// Discovery: under plain FDs, CC → CTRY fails (USA vs America); as a
	// synonym OFD it holds.
	found := fastofd.Discover(rel, ont, fastofd.DefaultDiscoveryOptions())
	fmt.Printf("discovered %d OFDs, among them:\n", len(found.OFDs))
	for _, d := range found.OFDs {
		if d.LHS.Len() <= 2 {
			fmt.Println(" ", d.Format(schema))
		}
	}

	// Now apply the paper's Table 3 updates: t9[MED] := ASA and
	// t11[MED] := adizem. No single sense covers {cartia, tiazac, ASA,
	// adizem}, so the instance violates [SYMP, DIAG] →syn MED.
	rel.SetString(8, schema.MustIndex("MED"), "ASA")
	rel.SetString(10, schema.MustIndex("MED"), "adizem")

	sigma, err := fastofd.ParseOFDs(schema, []string{
		"CC -> CTRY",
		"SYMP, DIAG -> MED",
	})
	if err != nil {
		log.Fatal(err)
	}
	v := fastofd.NewVerifier(rel, ont)
	fmt.Printf("\nafter the updates, [SYMP, DIAG] -> MED holds: %v\n", v.HoldsSyn(sigma[1]))

	res, err := fastofd.Clean(rel, ont, sigma, fastofd.DefaultCleanOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPareto-optimal repairs (ontology additions, cell updates):")
	for _, opt := range res.Pareto {
		fmt.Printf("  (%d, %d)\n", opt.OntDist, opt.DataDist)
	}
	fmt.Printf("\nchosen repair — %d ontology additions, %d cell updates:\n",
		res.Best.OntDist, res.Best.DataDist)
	for _, ch := range res.Best.OntChanges {
		fmt.Printf("  ontology: add %q under sense %s (class %q)\n",
			ch.Value, res.Ontology.Sense(ch.Class), res.Ontology.Name(ch.Class))
	}
	for _, ch := range res.Best.DataChanges {
		fmt.Printf("  data: t%d[%s]: %q -> %q\n", ch.Row+1, schema.Name(ch.Col), ch.From, ch.To)
	}

	v2 := fastofd.NewVerifier(res.Instance, res.Ontology)
	fmt.Printf("\nrepaired instance satisfies Σ: %v\n", v2.SatisfiesAll(sigma))
}
