// Inheritance: is-a OFDs end to end, on the paper's Figure 1 drug
// hierarchy. The dependency [SYMP, DIAG] →inh MED ("a diagnosis is treated
// with drugs from one family") holds where the synonym version fails, and
// OFDClean's inheritance mode repairs a typo without flattening the family.
package main

import (
	"fmt"
	"log"

	"github.com/fastofd/fastofd"
)

func main() {
	// Figure 1 as a tree: drug families above concrete drugs.
	ont := fastofd.NewOntology()
	root := ont.MustAddClass("continuant drug", "FDA", fastofd.NoClass)
	nsaid := ont.MustAddClass("NSAID", "FDA", root)
	ont.MustAddClass("ibuprofen", "FDA", nsaid)
	ont.MustAddClass("naproxen", "FDA", nsaid)
	analgesic := ont.MustAddClass("analgesic", "FDA", root)
	aceta := ont.MustAddClass("acetaminophen", "FDA", analgesic)
	ont.MustAddClass("tylenol", "FDA", aceta)

	schema := fastofd.MustSchema("SYMP", "DIAG", "MED")
	rel, err := fastofd.FromRows(schema, [][]string{
		{"joint pain", "osteoarthritis", "ibuprofen"},
		{"joint pain", "osteoarthritis", "NSAID"},
		{"joint pain", "osteoarthritis", "naproxen"},
		{"nausea", "migrane", "analgesic"},
		{"nausea", "migrane", "tylenol"},
		{"nausea", "migrane", "acetaminophen"},
		{"nausea", "migrane", "tyelnol"}, // typo
	})
	if err != nil {
		log.Fatal(err)
	}
	d := fastofd.MustParseOFD(schema, "SYMP,DIAG -> MED")
	v := fastofd.NewVerifier(rel, ont)
	fmt.Println("as synonym OFD:        ", v.HoldsSyn(d))
	fmt.Println("as inheritance OFD θ=1:", v.HoldsInh(d, 1))
	fmt.Println("as inheritance OFD θ=2:", v.HoldsInh(d, 2), "(fails only because of the typo)")

	// Discover inheritance OFDs directly.
	opts := fastofd.DefaultDiscoveryOptions()
	opts.Mode = fastofd.ModeInheritance
	opts.Theta = 2
	res := fastofd.Discover(rel, ont, opts)
	fmt.Printf("\ninheritance OFDs discovered (θ=2): %d\n", len(res.OFDs))

	// Clean under inheritance semantics: only the typo moves; the family
	// members (ibuprofen / NSAID / naproxen) survive untouched.
	copts := fastofd.DefaultCleanOptions()
	copts.IsATheta = 2
	cres, err := fastofd.Clean(rel, ont, fastofd.Set{d}, copts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninheritance repair: %d ontology additions, %d cell updates\n",
		cres.Best.OntDist, cres.Best.DataDist)
	for _, ch := range cres.Best.DataChanges {
		fmt.Printf("  t%d[MED]: %q -> %q\n", ch.Row+1, ch.From, ch.To)
	}
	v2 := fastofd.NewVerifier(cres.Instance, cres.Ontology)
	fmt.Println("repaired instance satisfies the OFD at θ=2:", v2.HoldsInh(d, 2))

	// Contrast with synonym semantics, which must flatten each class.
	sres, err := fastofd.Clean(rel, ont, fastofd.Set{d}, fastofd.DefaultCleanOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsynonym repair for comparison: %d cell updates (inheritance needed %d)\n",
		sres.Best.DataDist, cres.Best.DataDist)
}
