// Clinical: the paper's LinkedCT-style workload at scale — generate a
// clinical-trials relation with a multi-sense medication ontology, discover
// exact and approximate OFDs, inspect where in the lattice they live and
// how many false-positive "errors" a traditional FD cleaner would report,
// then corrupt the data and repair it with OFDClean.
package main

import (
	"fmt"
	"log"

	"github.com/fastofd/fastofd"
	"github.com/fastofd/fastofd/internal/gen"
	"github.com/fastofd/fastofd/internal/metrics"
)

func main() {
	// 10K clinical trial records, 4 senses, 3% injected errors, 4% of the
	// ontology's values missing (stale ontology).
	ds := gen.Generate(gen.Config{
		Rows:    10000,
		Seed:    42,
		Senses:  4,
		ErrRate: 0.03,
		IncRate: 0.04,
		NumOFDs: 6,
	})
	fmt.Printf("generated %d tuples x %d attributes, %d injected errors, %d missing ontology values\n",
		ds.Rel.NumRows(), ds.Rel.NumCols(), len(ds.Errors), len(ds.Removals))

	// --- Discovery on the clean instance.
	res := fastofd.Discover(ds.CleanRel, ds.FullOnt, fastofd.DefaultDiscoveryOptions())
	fmt.Printf("\nFastOFD: %d minimal OFDs in %s (%d candidates)\n",
		len(res.OFDs), res.Elapsed.Round(1e6), res.CandidatesChecked)
	fmt.Println("lattice profile (level: OFDs found / time):")
	for _, ls := range res.Levels {
		if ls.Discovered > 0 {
			fmt.Printf("  level %2d: %4d OFDs  %v\n", ls.Level, ls.Discovered, ls.Elapsed.Round(1e6))
		}
	}

	// False positives a traditional FD would flag: tuples whose consequent
	// differs syntactically but is synonymous.
	v := fastofd.NewVerifier(ds.CleanRel, ds.FullOnt)
	saved, n := 0.0, 0
	for _, d := range res.OFDs {
		if f := v.NonEqualConsequentFraction(d); f > 0 {
			saved += f
			n++
		}
	}
	if n > 0 {
		fmt.Printf("\n%d discovered OFDs contain synonymous (non-equal) consequents;\n", n)
		fmt.Printf("on average %.0f%% of their tuples would be FALSE-POSITIVE errors under plain FDs\n", 100*saved/float64(n))
	}

	// --- Approximate discovery on the dirty instance.
	opts := fastofd.DefaultDiscoveryOptions()
	opts.MinSupport = 0.9
	approx := fastofd.Discover(ds.Rel, ds.Ont, opts)
	fmt.Printf("\napproximate discovery on the dirty instance (κ=0.9): %d OFDs\n", len(approx.OFDs))

	// --- Repair the dirty instance against the planted Σ.
	cres, err := fastofd.Clean(ds.Rel, ds.Ont, ds.Sigma, fastofd.DefaultCleanOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nOFDClean: %d equivalence classes, %d conflict edges, %d ontology candidates\n",
		cres.ClassCount, cres.EdgeCount, cres.Candidates)
	fmt.Printf("chosen repair: %d ontology additions + %d cell updates (of %d injected errors)\n",
		cres.Best.OntDist, cres.Best.DataDist, len(ds.Errors))

	dpr := metrics.DataRepairAccuracy(ds, cres.Best.DataChanges, cres.Instance)
	opr := metrics.OntologyRepairAccuracy(ds, cres.Best.OntChanges)
	spr := metrics.SenseAccuracy(ds, cres.Assignment)
	fmt.Printf("data repair   P=%.1f%% R=%.1f%%\n", 100*dpr.Precision, 100*dpr.Recall)
	fmt.Printf("ontology rep. P=%.1f%% R=%.1f%%\n", 100*opr.Precision, 100*opr.Recall)
	fmt.Printf("sense select. P=%.1f%% R=%.1f%%\n", 100*spr.Precision, 100*spr.Recall)

	v2 := fastofd.NewVerifier(cres.Instance, cres.Ontology)
	fmt.Printf("repaired instance satisfies Σ: %v\n", v2.SatisfiesAll(ds.Sigma))
}
