// Package fastofd is a from-scratch Go implementation of Ontology
// Functional Dependencies (OFDs) as described in "(Discovery and)
// Contextual Data Cleaning with Ontology Functional Dependencies"
// (EDBT 2018 and its extended version): dependencies whose consequent
// values must agree up to synonym relationships defined by a sense-annotated
// ontology, rather than up to syntactic equality.
//
// The package exposes the two systems from the paper plus everything they
// stand on:
//
//   - FastOFD (Discover): lattice-based discovery of a complete, minimal
//     set of synonym OFDs holding on a relation w.r.t. an ontology, with
//     the paper's axiomatic pruning rules and approximate-OFD support.
//   - OFDClean (Clean): contextual repair — per-equivalence-class sense
//     assignment, Earth-Mover's-Distance-guided refinement, beam-search
//     ontology repair, and conflict-graph data repair producing
//     Pareto-optimal (ontology, data) repair combinations.
//   - The OFD theory: sound & complete axioms, linear-time inference
//     (Closure), implication, and minimal covers.
//   - Relational substrate: column-store relations, partitions, CSV I/O.
//   - Ontology substrate: sense-annotated synonym classes with is-a trees,
//     JSON I/O.
//
// Quick start:
//
//	rel, _ := fastofd.ReadCSVFile("trials.csv")
//	ont, _ := fastofd.ReadOntologyFile("drugs.json")
//	found := fastofd.Discover(rel, ont, fastofd.DefaultDiscoveryOptions())
//	res, _ := fastofd.Clean(rel, ont, found.OFDs, fastofd.DefaultCleanOptions())
//	fmt.Println(res.Best.DataDist, "cell repairs,", res.Best.OntDist, "ontology additions")
package fastofd

import (
	"context"
	"io"

	"github.com/fastofd/fastofd/internal/core"
	"github.com/fastofd/fastofd/internal/discovery"
	"github.com/fastofd/fastofd/internal/exec"
	"github.com/fastofd/fastofd/internal/ontology"
	"github.com/fastofd/fastofd/internal/pipeline"
	"github.com/fastofd/fastofd/internal/relation"
	"github.com/fastofd/fastofd/internal/repair"
	"github.com/fastofd/fastofd/internal/snapshot"
)

// Relational model.
type (
	// Relation is a column-oriented, dictionary-encoded relational instance.
	Relation = relation.Relation
	// Schema names a relation's attributes.
	Schema = relation.Schema
	// AttrSet is a bitset of attribute positions.
	AttrSet = relation.AttrSet
	// Partition is a set of equivalence classes over an attribute set.
	Partition = relation.Partition
)

// Ontology model.
type (
	// Ontology is a sense-annotated synonym ontology.
	Ontology = ontology.Ontology
	// ClassID identifies one ontology class (a sense of an entity).
	ClassID = ontology.ClassID
)

// NoClass marks the absence of an ontology class.
const NoClass = ontology.NoClass

// Dependencies.
type (
	// OFD is a synonym Ontology Functional Dependency X →syn A.
	OFD = core.OFD
	// Set is a set of OFDs (Σ).
	Set = core.Set
	// Verifier checks OFDs against a relation and ontology.
	Verifier = core.Verifier
	// Violation explains one violating equivalence class.
	Violation = core.Violation
	// Report is the output of Detect.
	Report = core.Report
	// Monitor maintains OFD satisfaction incrementally under updates.
	Monitor = core.Monitor
	// CellUpdate is one cell write of a batched Monitor update.
	CellUpdate = core.CellUpdate
)

// Execution substrate.
type (
	// Stats is a registry of named per-stage execution spans; pass one via
	// DiscoveryOptions.Stats / CleanOptions.Stats (or DetectContext) to
	// observe where a run spends its time.
	Stats = exec.Stats
	// StageStat is one stage's accumulated counters.
	StageStat = exec.StageStat
)

// NewStats returns an empty per-stage statistics registry.
func NewStats() *Stats { return exec.NewStats() }

// Discovery (FastOFD).
type (
	// DiscoveryOptions configure Discover.
	DiscoveryOptions = discovery.Options
	// DiscoveryResult is Discover's output.
	DiscoveryResult = discovery.Result
	// LevelStat records per-lattice-level effort.
	LevelStat = discovery.LevelStat
	// DiscoveryMode selects the ontological relationship for candidates.
	DiscoveryMode = discovery.Mode
	// RankedOFD pairs a discovered OFD with interestingness measures.
	RankedOFD = discovery.RankedOFD
	// Maintainer keeps the minimal OFD cover live under update streams.
	Maintainer = discovery.Maintainer
	// CoverDiff is one batch's change to a maintained cover.
	CoverDiff = discovery.Diff
)

// Discovery modes.
const (
	// ModeSynonym discovers synonym OFDs (the paper's focus).
	ModeSynonym = discovery.ModeSynonym
	// ModeInheritance discovers inheritance (is-a) OFDs with a path bound.
	ModeInheritance = discovery.ModeInheritance
)

// Cleaning (OFDClean).
type (
	// CleanOptions configure Clean.
	CleanOptions = repair.Options
	// CleanResult is Clean's output.
	CleanResult = repair.Result
	// RepairOption is one Pareto-optimal repair combination.
	RepairOption = repair.RepairOption
	// CellChange is one data repair.
	CellChange = repair.CellChange
	// OntChange is one ontology repair.
	OntChange = repair.OntChange
	// ClassKey identifies one equivalence class of one OFD.
	ClassKey = repair.ClassKey
	// Assignment maps equivalence classes to senses.
	Assignment = repair.Assignment
	// SigmaRepair proposes antecedent augmentations for a violated OFD.
	SigmaRepair = repair.SigmaRepair
	// SigmaRepairOptions configure RepairSigma.
	SigmaRepairOptions = repair.SigmaRepairOptions
)

// NewSchema creates a schema from attribute names.
func NewSchema(names ...string) (*Schema, error) { return relation.NewSchema(names...) }

// MustSchema is NewSchema that panics on error.
func MustSchema(names ...string) *Schema { return relation.MustSchema(names...) }

// NewRelation creates an empty relation over the schema.
func NewRelation(schema *Schema) *Relation { return relation.New(schema) }

// FromRows builds a relation from string rows.
func FromRows(schema *Schema, rows [][]string) (*Relation, error) {
	return relation.FromRows(schema, rows)
}

// ReadCSV parses a relation from CSV (header row = attribute names).
func ReadCSV(r io.Reader) (*Relation, error) { return relation.ReadCSV(r) }

// ReadCSVFile parses a relation from a CSV file.
func ReadCSVFile(path string) (*Relation, error) { return relation.ReadCSVFile(path) }

// WriteCSV serializes a relation as CSV.
func WriteCSV(w io.Writer, rel *Relation) error { return relation.WriteCSV(w, rel) }

// WriteCSVFile serializes a relation to a CSV file.
func WriteCSVFile(path string, rel *Relation) error { return relation.WriteCSVFile(path, rel) }

// NewOntology returns an empty ontology.
func NewOntology() *Ontology { return ontology.New() }

// ReadOntology parses an ontology from its JSON serialization.
func ReadOntology(r io.Reader) (*Ontology, error) { return ontology.ReadJSON(r) }

// ReadOntologyFile parses an ontology from a JSON file.
func ReadOntologyFile(path string) (*Ontology, error) { return ontology.ReadJSONFile(path) }

// WriteOntology serializes an ontology as JSON.
func WriteOntology(w io.Writer, o *Ontology) error { return ontology.WriteJSON(w, o) }

// WriteOntologyFile serializes an ontology to a JSON file.
func WriteOntologyFile(path string, o *Ontology) error { return ontology.WriteJSONFile(path, o) }

// ParseOFD parses "A,B -> C" using schema attribute names.
func ParseOFD(schema *Schema, s string) (OFD, error) { return core.Parse(schema, s) }

// MustParseOFD is ParseOFD that panics on error.
func MustParseOFD(schema *Schema, s string) OFD { return core.MustParse(schema, s) }

// ParseOFDs parses one dependency per element.
func ParseOFDs(schema *Schema, specs []string) (Set, error) { return core.ParseSet(schema, specs) }

// Closure computes X⁺ = {A | Σ ⊢ X → A} under the OFD axioms in linear
// time (Algorithm 1).
func Closure(sigma Set, x AttrSet) AttrSet { return core.Closure(sigma, x) }

// Implies reports whether Σ ⊢ X → A.
func Implies(sigma Set, d OFD) bool { return core.Implies(sigma, d) }

// MinimalCover computes a minimal cover of Σ.
func MinimalCover(sigma Set) Set { return core.MinimalCover(sigma) }

// NewVerifier builds a verifier for checking OFDs on an instance.
func NewVerifier(rel *Relation, ont *Ontology) *Verifier {
	return core.NewVerifier(rel, ont, nil)
}

// Detect finds and explains every violation of Σ on the instance, also
// counting the tuples only a syntactic FD would (falsely) flag.
func Detect(rel *Relation, ont *Ontology, sigma Set) *Report {
	return core.Detect(rel, ont, sigma)
}

// DetectWorkers is Detect with the partition-cache warm-up spread over up to
// workers goroutines (0 = all CPUs). The report is identical for every
// worker count.
func DetectWorkers(rel *Relation, ont *Ontology, sigma Set, workers int) *Report {
	return core.DetectWorkers(rel, ont, sigma, workers)
}

// DetectContext is DetectWorkers with cooperative cancellation and optional
// per-stage stats: a cancelled run returns the violations of the
// dependencies examined so far plus an error satisfying
// errors.Is(err, ctx.Err()). stats may be nil.
func DetectContext(ctx context.Context, rel *Relation, ont *Ontology, sigma Set, workers int, stats *Stats) (*Report, error) {
	return core.DetectContext(ctx, rel, ont, sigma, workers, stats)
}

// NewMonitor builds an incremental satisfaction monitor over the instance:
// consequent-cell updates re-verify only the affected equivalence classes.
func NewMonitor(rel *Relation, ont *Ontology, sigma Set) (*Monitor, error) {
	return core.NewMonitor(rel, ont, sigma)
}

// NewMonitorContext is NewMonitor with cooperative cancellation of the
// initial index build; a cancelled build returns nil plus the wrapped
// context error.
func NewMonitorContext(ctx context.Context, rel *Relation, ont *Ontology, sigma Set) (*Monitor, error) {
	return core.NewMonitorContext(ctx, rel, ont, sigma)
}

// NewMonitorWorkers is NewMonitorContext with the index build — and the
// monitor's subsequent ApplyBatch fan-out — spread over up to workers
// goroutines (0 = all CPUs) and optional per-stage stats
// ("monitor.build", "monitor.route", "monitor.apply", "monitor.merge"
// spans). The LHS-key shard count is derived from the worker count; the
// violation state is identical for every worker count.
func NewMonitorWorkers(ctx context.Context, rel *Relation, ont *Ontology, sigma Set, workers int, stats *Stats) (*Monitor, error) {
	return core.NewMonitorWorkers(ctx, rel, ont, sigma, workers, stats)
}

// NewMonitorSharded is NewMonitorWorkers with an explicit LHS-key shard
// count: every equivalence class is routed to one of `shards` independent
// shards (0 derives the count from workers), so ApplyBatch fans appends,
// multiset maintenance, and re-verification out shard-locally with no
// shared write state, and Report reads epoch-stamped snapshots
// concurrently with ingestion. Reports are byte-identical for every shard
// and worker count.
func NewMonitorSharded(ctx context.Context, rel *Relation, ont *Ontology, sigma Set, shards, workers int, stats *Stats) (*Monitor, error) {
	return core.NewMonitorSharded(ctx, rel, ont, sigma, shards, workers, stats)
}

// DefaultDiscoveryOptions returns the paper's full FastOFD configuration
// (all pruning optimizations on, exact OFDs).
func DefaultDiscoveryOptions() DiscoveryOptions { return discovery.DefaultOptions() }

// Discover runs FastOFD: it returns the complete, minimal set of synonym
// OFDs holding on the relation w.r.t. the ontology.
func Discover(rel *Relation, ont *Ontology, opts DiscoveryOptions) *DiscoveryResult {
	return discovery.Discover(rel, ont, opts)
}

// DiscoverContext is Discover with cooperative cancellation: the lattice
// traversal stops between work items, returning the sorted OFDs of the
// completed levels plus an error satisfying errors.Is(err, ctx.Err()).
func DiscoverContext(ctx context.Context, rel *Relation, ont *Ontology, opts DiscoveryOptions) (*DiscoveryResult, error) {
	return discovery.DiscoverContext(ctx, rel, ont, opts)
}

// NewMaintainer builds an incremental discovery engine: it runs one fresh
// discovery for the initial cover, then keeps the complete minimal cover
// live under the same cell-update batches and row appends the Monitor
// consumes, emitting a CoverDiff per batch instead of re-running the
// lattice. Supports exact synonym OFDs over the uncapped lattice (the
// configuration the incremental soundness argument covers); other
// DiscoveryOptions are rejected. The maintained cover is byte-identical
// to Discover over the current instance for every worker count.
func NewMaintainer(rel *Relation, ont *Ontology, opts DiscoveryOptions) (*Maintainer, error) {
	return discovery.NewMaintainer(rel, ont, opts)
}

// NewMaintainerContext is NewMaintainer with cooperative cancellation of
// the initial discovery and index build.
func NewMaintainerContext(ctx context.Context, rel *Relation, ont *Ontology, opts DiscoveryOptions) (*Maintainer, error) {
	return discovery.NewMaintainerContext(ctx, rel, ont, opts)
}

// NewMaintainerFromCover builds a maintainer around an already-known
// minimal cover (for example a saved maintainer's Cover()), skipping the
// initial discovery — the instant-restart path the Snapshot layer uses.
// The cover must be the exact minimal synonym-OFD cover of the instance.
func NewMaintainerFromCover(ctx context.Context, rel *Relation, ont *Ontology, cover Set, opts DiscoveryOptions) (*Maintainer, error) {
	return discovery.NewMaintainerFromCover(ctx, rel, ont, cover, opts)
}

// Merged pipeline (discover → detect → repair on one shared index).
type (
	// Pipeline runs the Maintainer and the Monitor on one shared live-index
	// substrate: one relation, one verifier, one partition cache, and one
	// overlay registry serve cover maintenance, violation detection, and
	// repair verification together. A single ApplyBatch feeds all three.
	Pipeline = pipeline.Pipeline
	// PipelineOptions configure NewPipeline.
	PipelineOptions = pipeline.Options
	// PipelineBatchResult is one batch's combined outcome: the cover diff,
	// the monitor epoch observing the batch, and per-phase latencies.
	PipelineBatchResult = pipeline.BatchResult
)

// NewPipeline builds the merged pipeline: the initial cover is discovered
// once, both engines index it off one shared substrate, and every batch
// thereafter maintains the cover and the violation report together.
// Everything observable is byte-identical to running the engines
// separately — the cover matches a fresh Discover and reports match a
// fresh Detect over the final instance, for any shard and worker count.
// With FollowCover, the monitored set tracks the cover as it drifts.
func NewPipeline(ctx context.Context, rel *Relation, ont *Ontology, opts PipelineOptions) (*Pipeline, error) {
	return pipeline.New(ctx, rel, ont, opts)
}

// Persistence (snapshots).
type (
	// SnapshotState is the content of one snapshot: the relation instance
	// plus any engines built over it (partition cache, monitor,
	// maintainer). All present components must share one relation and
	// ontology.
	SnapshotState = snapshot.State
	// SnapshotOptions configure OpenSnapshot (restore workers and stats).
	SnapshotOptions = snapshot.Options
)

// SaveSnapshot atomically writes the state to a single versioned,
// checksummed snapshot file. Reopening with OpenSnapshot restores the
// relation, cache, monitor, and maintainer without recomputing their
// indexes: the monitor's first Report and the maintainer's Cover are
// byte-identical to the saved ones.
func SaveSnapshot(path string, st *SnapshotState) error { return snapshot.Save(path, st) }

// OpenSnapshot reads a snapshot file written by SaveSnapshot. Reopen cost
// scales with the flagged violation state, not the instance: bulk arrays
// decode as zero-copy views and index maps hydrate lazily on first write.
func OpenSnapshot(path string, opts SnapshotOptions) (*SnapshotState, error) {
	return snapshot.Open(path, opts)
}

// Rank scores discovered OFDs by interestingness (compactness, evidence,
// and how much of their satisfaction the ontology provides).
func Rank(rel *Relation, ont *Ontology, ofds Set) []RankedOFD {
	return discovery.Rank(rel, ont, ofds)
}

// Top returns the k highest-scoring ranked OFDs.
func Top(ranked []RankedOFD, k int) []RankedOFD { return discovery.Top(ranked, k) }

// DefaultCleanOptions returns the paper's OFDClean defaults (θ=5, beam 3,
// τ=65%).
func DefaultCleanOptions() CleanOptions { return repair.DefaultOptions() }

// Clean runs OFDClean: sense assignment, beam-search ontology repair and
// τ-constrained data repair, returning the Pareto-optimal repairs and a
// repaired (instance, ontology) pair for the best one.
func Clean(rel *Relation, ont *Ontology, sigma Set, opts CleanOptions) (*CleanResult, error) {
	return repair.Clean(rel, ont, sigma, opts)
}

// CleanContext is Clean with cooperative cancellation: a cancelled run
// returns the phases completed so far as a well-formed partial result plus
// an error satisfying errors.Is(err, ctx.Err()).
func CleanContext(ctx context.Context, rel *Relation, ont *Ontology, sigma Set, opts CleanOptions) (*CleanResult, error) {
	return repair.CleanContext(ctx, rel, ont, sigma, opts)
}

// RepairSigma proposes minimal antecedent augmentations for the violated
// dependencies in Σ — repairing the constraints instead of the data or the
// ontology.
func RepairSigma(rel *Relation, ont *Ontology, sigma Set, opts SigmaRepairOptions) []SigmaRepair {
	return repair.RepairSigma(rel, ont, sigma, opts)
}
